"""Graceful drains vs crashes, correlated rack outages, hedged tails.

The PR 10 migration layer claims that *planned* capacity loss is
qualitatively cheaper than *unplanned* loss: a drained replica stops
admitting, finishes what it can inside the drain window, and checkpoints
the rest — KV bytes ship over the interconnect and resume on a healthy
peer with **zero recompute** and **zero lost requests** — while the same
replica crashing at the same instant kills its in-flight work onto the
retry path.  Correlated faults ride a :class:`FailureDomain` topology
(a rack outage takes all its members at once), and an optional
:class:`HedgePolicy` duplicates tail-stuck requests onto a second
healthy domain, first token wins.

Three measured claims on the three-replica knee (six for the rack
study), all deterministic functions of the trace seed and schedule:

* **drain vs crash** — same replica, same instant, same window: the
  drain migrates instead of killing, and beats the crash on p99 TTFT;
* **correlated rack outage vs independent crashes** — the same three
  replicas fail together (one rack) or staggered (independent); both
  lose zero requests, and the correlated outage's simultaneous capacity
  loss shows up in the degraded-goodput window;
* **hedged tails** — a replica hangs; hedged dispatch cuts p99 TTFT
  against the retry-only run on the identical trace.

Results go to ``BENCH_migration.json`` at the repo root,
``benchmarks/results/migration*.txt``, and the run store under
``benchmarks/runs/migration.jsonl``.  The assertions double as the CI
chaos smoke (``MIGRATION_SWEEP=smoke`` scales the trace down): migrated
work > 0, zero lost, zero recompute, drain p99 < crash p99.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.cluster import (
    DegradedModeConfig,
    FailureDomain,
    FaultEvent,
    FaultSchedule,
    HedgePolicy,
    ReplicaRouter,
    RetryPolicy,
)
from repro.config import TINY_MODEL, QuantConfig
from repro.engine import (
    ContinuousBatchScheduler,
    CycleModelBackend,
    TenantSpec,
    synthetic_trace,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_migration.json"

QUANT = QuantConfig(weight_group_size=32)
MAX_BATCH = 8
KV_BUDGET = 256

MIX = ((TenantSpec("fg", "interactive", ttft_slo_s=0.005), 0.25),
       (TenantSpec("bulk", "batch", kv_quota_tokens=160), 0.5),
       (TenantSpec("bg", "best_effort", kv_quota_tokens=96), 0.25))

#: ``full`` is the committed record; ``smoke`` is the CI budget with
#: the same floor assertions.
SWEEP_MODE = os.environ.get("MIGRATION_SWEEP", "full")
N_REQUESTS = 1_500 if SWEEP_MODE == "smoke" else 12_000
LOAD_RPS = 36_000.0
TRACE_SEED = 23

RECORD: dict = {"schema": "migration-v1", "sections": {}}


def _span_s(n: int = N_REQUESTS) -> float:
    return n / LOAD_RPS


def _engines(n: int) -> list:
    return [ContinuousBatchScheduler(
        CycleModelBackend(TINY_MODEL, QUANT, n_slots=MAX_BATCH),
        max_batch=MAX_BATCH, kv_token_budget=KV_BUDGET,
        fast_forward="multi") for _ in range(n)]


def _trace(rate: float = LOAD_RPS) -> list:
    return synthetic_trace(TINY_MODEL, N_REQUESTS,
                           arrival_rate_rps=rate, seed=TRACE_SEED,
                           prompt_len=(3, 10), decode_len=(6, 28),
                           tenant_mix=MIX)


def _run(faults, replicas: int = 3, topology=None,
         hedge: HedgePolicy | None = None,
         rate: float = LOAD_RPS) -> tuple:
    router = ReplicaRouter(
        _engines(replicas), policy="least_loaded",
        faults=FaultSchedule(tuple(faults), topology=topology),
        retry=RetryPolicy(), degraded=DegradedModeConfig(),
        hedge=hedge)
    start = time.perf_counter()
    report = router.run(_trace(rate), telemetry="full",
                        max_steps=1_000_000_000)
    return report, round(time.perf_counter() - start, 2)


def _headline(report) -> dict:
    return {
        "goodput_tokens_per_s": round(
            report.total_new_tokens / report.total_time_s, 1),
        "p99_ttft_ms": round(report.ttft_percentile_s(99) * 1e3, 3),
        "p50_ttft_ms": round(report.ttft_percentile_s(50) * 1e3, 3)}


#: Fault instant and window shared by the drain and the crash so the
#: comparison is same-replica, same-instant, same-width.  The window is
#: a fraction of one decode's service time: in-flight work *cannot* all
#: finish inside it, so the drain is forced onto the
#: checkpoint-and-migrate path (and the crash kills the same work).
FAULT_REPLICA = 1


def _fault_window() -> tuple:
    span = _span_s()
    return 0.35 * span, 0.0005


def bench_drain_vs_crash(save_result):
    """Planned drain (migrate) vs unplanned crash (kill + retry)."""
    at_s, window_s = _fault_window()
    drain_rep, drain_wall = _run(
        [FaultEvent("drain", FAULT_REPLICA, at_s, window_s)])
    crash_rep, crash_wall = _run(
        [FaultEvent("crash", FAULT_REPLICA, at_s, window_s,
                    warmup_s=0.0)])
    drain, crash = drain_rep.resilience, crash_rep.resilience

    section = {
        "model": TINY_MODEL.name, "mode": SWEEP_MODE,
        "n_requests": N_REQUESTS, "replicas": 3,
        "arrival_rate_rps": LOAD_RPS, "trace_seed": TRACE_SEED,
        "fault": {"replica": FAULT_REPLICA,
                  "at_ms": round(at_s * 1e3, 3),
                  "window_ms": round(window_s * 1e3, 3)},
        "drain": dict(_headline(drain_rep),
                      n_migrated=drain["n_migrated"],
                      migrated_kv_bytes=drain["migrated_kv_bytes"],
                      n_resumed=drain["n_resumed"],
                      recompute_tokens=drain["resume_recompute_tokens"],
                      n_killed=drain["n_killed"],
                      n_lost=drain["n_lost"], wall_s=drain_wall),
        "crash": dict(_headline(crash_rep),
                      n_killed=crash["n_killed"],
                      n_redispatched=crash["n_redispatched"],
                      n_lost=crash["n_lost"], wall_s=crash_wall),
    }
    RECORD["sections"]["drain_vs_crash"] = section

    # CI floors.  Acceptance: a drain migrates real KV state, loses
    # nothing, recomputes nothing, and beats the same-instant crash on
    # tail latency.
    assert drain["n_drains"] == 1 and drain["n_migrated"] > 0, drain
    assert drain["migrated_kv_bytes"] > 0, drain
    assert drain["resume_recompute_tokens"] == 0, drain
    assert drain["n_killed"] == 0 and drain["n_lost"] == 0, drain
    assert drain["n_failed"] == 0, drain
    assert crash["n_killed"] > 0 and crash["n_lost"] == 0, crash
    assert section["drain"]["p99_ttft_ms"] \
        < section["crash"]["p99_ttft_ms"], section
    # Every admitted request is accounted for on both paths.
    assert drain_rep.n_requests == N_REQUESTS
    assert crash_rep.n_requests == N_REQUESTS
    save_result("migration_drain_vs_crash",
                json.dumps(section, indent=2))


#: Rack topology for the correlated-outage study: six replicas in two
#: racks of three.  The outage takes rack0 whole.
RACKS = (FailureDomain("rack0", (0, 1, 2)),
         FailureDomain("rack1", (3, 4, 5)))


def bench_correlated_rack_outage(save_result):
    """One rack fails together vs the same replicas failing staggered."""
    span = _span_s()
    at_s, down_s = 0.3 * span, 0.1 * span
    correlated = [FaultEvent("crash", r, at_s, down_s, warmup_s=0.0)
                  for r in RACKS[0].replicas]
    # Independent: identical replicas and total downtime, but the
    # crashes are staggered so the cluster never loses more than one
    # replica at a time.
    independent = [FaultEvent("crash", r, at_s + i * 1.5 * down_s,
                              down_s, warmup_s=0.0)
                   for i, r in enumerate(RACKS[0].replicas)]
    corr_rep, corr_wall = _run(correlated, replicas=6, topology=RACKS)
    ind_rep, ind_wall = _run(independent, replicas=6, topology=RACKS)
    corr, ind = corr_rep.resilience, ind_rep.resilience

    section = {
        "mode": SWEEP_MODE, "n_requests": N_REQUESTS, "replicas": 6,
        "racks": [{"name": d.name, "replicas": list(d.replicas)}
                  for d in RACKS],
        "outage": {"at_ms": round(at_s * 1e3, 3),
                   "downtime_ms": round(down_s * 1e3, 3)},
        "correlated": dict(
            _headline(corr_rep), n_killed=corr["n_killed"],
            n_redispatched=corr["n_redispatched"],
            n_lost=corr["n_lost"],
            degraded_time_ms=round(corr["degraded_time_s"] * 1e3, 3),
            wall_s=corr_wall),
        "independent": dict(
            _headline(ind_rep), n_killed=ind["n_killed"],
            n_redispatched=ind["n_redispatched"],
            n_lost=ind["n_lost"],
            degraded_time_ms=round(ind["degraded_time_s"] * 1e3, 3),
            wall_s=ind_wall),
    }
    RECORD["sections"]["correlated_rack_outage"] = section

    # CI floors: a whole-rack outage still costs latency, never
    # requests — the survivors in rack1 absorb everything (domain-aware
    # retry rotation steers re-dispatches off the dead rack).
    assert corr["n_crashes"] == 3 and corr["n_killed"] > 0, corr
    assert corr["n_lost"] == 0 and corr["n_failed"] == 0, corr
    assert corr["n_redispatched"] == corr["n_killed"], corr
    assert ind["n_lost"] == 0 and ind["n_failed"] == 0, ind
    assert corr_rep.n_requests == N_REQUESTS
    assert ind_rep.n_requests == N_REQUESTS
    save_result("migration_rack_outage", json.dumps(section, indent=2))


#: The hedge study runs at a third of the knee load: hedging targets
#: the tail a *stuck replica* inflicts on its own requests, which is
#: only attributable when the survivors have headroom to absorb the
#: duplicates (at the knee the hang floods every replica's queue and
#: the whole distribution shifts, not just the tail).
HEDGE_RPS = LOAD_RPS / 3


def bench_hedged_tail(save_result):
    """Hedged dispatch vs retry-only under a mid-run replica hang."""
    span = N_REQUESTS / HEDGE_RPS
    hang = [FaultEvent("hang", 0, 0.1 * span, 0.6 * span)]
    plain_rep, plain_wall = _run(hang, rate=HEDGE_RPS)
    # Hedge when a request's first token is four medians late: the
    # hang victims blow far past that, everyone else stays under it.
    delay_s = plain_rep.ttft_percentile_s(50) * 4
    hedge_rep, hedge_wall = _run(hang, hedge=HedgePolicy(delay_s),
                                 rate=HEDGE_RPS)
    hedge = hedge_rep.resilience

    section = {
        "mode": SWEEP_MODE, "n_requests": N_REQUESTS, "replicas": 3,
        "arrival_rate_rps": HEDGE_RPS,
        "hang": {"replica": 0, "at_ms": round(0.1 * span * 1e3, 3),
                 "duration_ms": round(0.6 * span * 1e3, 3)},
        "hedge_delay_ms": round(delay_s * 1e3, 3),
        "retry_only": dict(_headline(plain_rep), wall_s=plain_wall),
        "hedged": dict(_headline(hedge_rep),
                       n_hedged=hedge["n_hedged"],
                       n_hedge_wins=hedge["n_hedge_wins"],
                       n_lost=hedge["n_lost"], wall_s=hedge_wall),
    }
    RECORD["sections"]["hedged_tail"] = section

    assert hedge["n_hedged"] > 0 and hedge["n_hedge_wins"] > 0, hedge
    assert hedge["n_lost"] == 0, hedge
    assert section["hedged"]["p99_ttft_ms"] \
        < section["retry_only"]["p99_ttft_ms"], section
    save_result("migration_hedged_tail", json.dumps(section, indent=2))


def bench_migration_replay_identical(save_result):
    """Same schedule + trace seed -> bit-identical drain report."""
    at_s, window_s = _fault_window()
    drain = [FaultEvent("drain", FAULT_REPLICA, at_s, window_s)]
    first, _ = _run(drain)
    second, _ = _run(drain)
    assert first.resilience == second.resilience
    assert first.total_time_s == second.total_time_s
    assert first.n_steps == second.n_steps
    assert len(first.results) == len(second.results)
    for a, b in zip(first.results, second.results):
        assert (a.request_id, a.tokens, a.ttft_s, a.e2e_s,
                a.finish_reason, a.preemptions) == \
            (b.request_id, b.tokens, b.ttft_s, b.e2e_s,
             b.finish_reason, b.preemptions), (a, b)
    RECORD["sections"]["replay"] = {
        "mode": SWEEP_MODE, "n_requests": N_REQUESTS,
        "trace_seed": TRACE_SEED, "bit_identical": True}
    save_result("migration_replay",
                f"drain replay over {N_REQUESTS} requests: "
                f"{len(first.results)} results, resilience + "
                f"per-request fields bit-identical across runs")


def bench_write_record(save_result):
    """Persist the machine-readable record (runs last in this file)."""
    assert set(RECORD["sections"]) == {
        "drain_vs_crash", "correlated_rack_outage", "hedged_tail",
        "replay"}
    RECORD["note"] = (
        "planned drain (checkpoint + KV migration, zero recompute) vs "
        "same-instant crash; whole-rack correlated outage vs staggered "
        "independent crashes over a FailureDomain topology; hedged "
        "dispatch vs retry-only under a replica hang; all runs are "
        "deterministic simulator observables (wall_s is harness time)")
    RECORD_PATH.write_text(json.dumps(RECORD, indent=2) + "\n")

    dvc = RECORD["sections"]["drain_vs_crash"]
    rack = RECORD["sections"]["correlated_rack_outage"]
    hedge = RECORD["sections"]["hedged_tail"]
    lines = [
        "Graceful drains, KV migration, correlated failure domains",
        f"model {dvc['model']}, {dvc['n_requests']:,} requests, load "
        f"{dvc['arrival_rate_rps']:,.0f} rps, mode {dvc['mode']}", "",
        f"  drain:  migrated {dvc['drain']['n_migrated']} "
        f"({dvc['drain']['migrated_kv_bytes']:,} KV bytes), resumed "
        f"{dvc['drain']['n_resumed']}, recompute "
        f"{dvc['drain']['recompute_tokens']} tokens, lost "
        f"{dvc['drain']['n_lost']}, p99 TTFT "
        f"{dvc['drain']['p99_ttft_ms']:.3f} ms",
        f"  crash:  killed {dvc['crash']['n_killed']}, redispatched "
        f"{dvc['crash']['n_redispatched']}, lost "
        f"{dvc['crash']['n_lost']}, p99 TTFT "
        f"{dvc['crash']['p99_ttft_ms']:.3f} ms",
        f"  rack outage: correlated p99 "
        f"{rack['correlated']['p99_ttft_ms']:.3f} ms vs independent "
        f"{rack['independent']['p99_ttft_ms']:.3f} ms (both lost 0)",
        f"  hedging: {hedge['hedged']['n_hedged']} hedged, "
        f"{hedge['hedged']['n_hedge_wins']} wins, p99 TTFT "
        f"{hedge['hedged']['p99_ttft_ms']:.3f} ms vs "
        f"{hedge['retry_only']['p99_ttft_ms']:.3f} ms retry-only",
    ]
    save_result("migration", "\n".join(lines))

    # Mirror the headline numbers into the diffable run store so
    # ``repro obs diff --baseline-window k`` tracks drift over a
    # noise-robust median baseline.
    from repro.obs import RunStore

    metrics = {
        "drain_n_migrated": dvc["drain"]["n_migrated"],
        "drain_migrated_kv_bytes": dvc["drain"]["migrated_kv_bytes"],
        "drain_recompute_tokens": dvc["drain"]["recompute_tokens"],
        "drain_n_lost": dvc["drain"]["n_lost"],
        "drain_p99_ttft_ms": dvc["drain"]["p99_ttft_ms"],
        "crash_p99_ttft_ms": dvc["crash"]["p99_ttft_ms"],
        "rack_correlated_p99_ttft_ms":
            rack["correlated"]["p99_ttft_ms"],
        "rack_independent_p99_ttft_ms":
            rack["independent"]["p99_ttft_ms"],
        "hedged_p99_ttft_ms": hedge["hedged"]["p99_ttft_ms"],
        "retry_only_p99_ttft_ms": hedge["retry_only"]["p99_ttft_ms"],
        "n_hedge_wins": hedge["hedged"]["n_hedge_wins"],
    }
    store = RunStore(REPO_ROOT / "benchmarks" / "runs")
    store.save(store.record(
        "migration", {"bench": "migration", "mode": SWEEP_MODE,
                      "n_requests": N_REQUESTS,
                      "trace_seed": TRACE_SEED}, metrics))


if __name__ == "__main__":
    def _print_result(name, text):
        print(f"[{name}]\n{text}\n")

    bench_drain_vs_crash(_print_result)
    bench_correlated_rack_outage(_print_result)
    bench_hedged_tail(_print_result)
    bench_migration_replay_identical(_print_result)
    bench_write_record(_print_result)
