"""Table III — comparison with embedded CPU and GPUs.

Regenerates the Pi-4B / Jetson AGX Orin / Jetson Orin Nano rows across
llama.cpp, TinyChat, and NanoLLM, and checks the paper's ordering: the
KV260 accelerator tops every framework's bandwidth utilization, with
NanoLLM on Orin Nano second at ~79%.
"""

import pytest

from repro.report.tables import table3_edge

PAPER_ROWS = {
    "llama.cpp (Pi)": (3.9, 0.11, 0.028),
    "llama.cpp (AGX Orin)": (62.5, 4.49, 0.072),
    "TinyChat (AGX Orin)": (62.5, 33.0, 0.528),
    "NanoLLM (AGX Orin)": (62.5, 47.1, 0.754),
    "NanoLLM (Orin Nano)": (20.7, 16.4, 0.792),
}


def bench_table3(benchmark, save_result):
    rows, text = benchmark(table3_edge, 1023)
    save_result("table3_edge_comparison", text)

    by_name = {r["name"]: r for r in rows}
    for name, (theo, measured, util) in PAPER_ROWS.items():
        row = by_name[name]
        assert row["theoretical"] == pytest.approx(theo, rel=0.02), name
        assert row["tokens_per_s"] == pytest.approx(measured), name
        assert row["utilization"] == pytest.approx(util, abs=0.02), name

    ours = by_name["Ours (simulated)"]
    # The paper's punchline: ~6% higher utilization than the best Jetson.
    assert ours["utilization"] > PAPER_ROWS["NanoLLM (Orin Nano)"][2] + 0.03
