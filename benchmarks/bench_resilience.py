"""Fault-tolerant cluster serving: crash-and-recover at the knee.

The PR 9 resilience layer claims that a replica crash in a data-parallel
cluster costs latency, never requests: every request in flight on the
failed replica is re-dispatched to the survivors with capped exponential
backoff, degraded-mode admission sheds only best-effort traffic while
capacity is down, and the whole episode — fault injection, detection,
retry, recovery warm-up — is a deterministic function of the fault seed
and the trace seed.

This benchmark measures that claim on a three-replica cluster at the
saturation knee: one replica crashes mid-traffic and comes back through
a warm-up slowdown.  The identical trace also runs through a healthy
cluster, so the cost of the crash (interactive p99 TTFT, total goodput)
is measured against the no-fault baseline at equal offered load, and
the chaos run is executed twice to pin the bit-identical-replay
contract.

Results go to ``BENCH_faults.json`` at the repo root,
``benchmarks/results/resilience.txt``, and the diffable run store under
``benchmarks/runs/faults.jsonl``.  The assertions double as the CI
chaos smoke (``RESILIENCE_SWEEP=smoke`` scales the trace down): zero
lost requests, recovery completes (every killed request is
re-dispatched, none fail), and interactive p99 TTFT stays bounded
through the outage.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.cluster import (
    DegradedModeConfig,
    FaultSchedule,
    ReplicaRouter,
    RetryPolicy,
)
from repro.config import TINY_MODEL, QuantConfig
from repro.engine import (
    ContinuousBatchScheduler,
    CycleModelBackend,
    TenantSpec,
    synthetic_trace,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_faults.json"

QUANT = QuantConfig(weight_group_size=32)
MAX_BATCH = 8
KV_BUDGET = 256
REPLICAS = 3

#: Same class shape as bench_slo: latency-sensitive foreground, quota'd
#: batch bulk, quota'd best-effort background (the shed class).
MIX = ((TenantSpec("fg", "interactive", ttft_slo_s=0.005), 0.25),
       (TenantSpec("bulk", "batch", kv_quota_tokens=160), 0.5),
       (TenantSpec("bg", "best_effort", kv_quota_tokens=96), 0.25))

#: ``full`` is the committed record; ``smoke`` is the CI budget with
#: the same floor assertions.
SWEEP_MODE = os.environ.get("RESILIENCE_SWEEP", "full")
N_REQUESTS = 3_000 if SWEEP_MODE == "smoke" else 30_000
#: Offered load at the three-replica saturation knee (~3x the single
#: engine knee measured by bench_slo at this model/config).
LOAD_RPS = 36_000.0
FAULT_SEED = 7
TRACE_SEED = 23

RECORD: dict = {"schema": "faults-v1", "sections": {}}


def _engines() -> list:
    return [ContinuousBatchScheduler(
        CycleModelBackend(TINY_MODEL, QUANT, n_slots=MAX_BATCH),
        max_batch=MAX_BATCH, kv_token_budget=KV_BUDGET,
        fast_forward="multi") for _ in range(REPLICAS)]


def _trace() -> list:
    return synthetic_trace(TINY_MODEL, N_REQUESTS,
                           arrival_rate_rps=LOAD_RPS, seed=TRACE_SEED,
                           prompt_len=(3, 10), decode_len=(6, 28),
                           tenant_mix=MIX)


def _schedule() -> FaultSchedule:
    """One replica crashes mid-traffic and warms back up.  Pure
    function of the arrival span and FAULT_SEED-derived constants, so
    the whole episode replays bit-identically."""
    span = N_REQUESTS / LOAD_RPS
    return FaultSchedule.single_crash(
        replica=FAULT_SEED % REPLICAS, at_s=0.35 * span,
        downtime_s=0.2 * span, warmup_s=0.1 * span, warmup_factor=2.0)


def _run(chaos: bool) -> tuple:
    kwargs = {}
    if chaos:
        kwargs = dict(faults=_schedule(),
                      retry=RetryPolicy(),
                      degraded=DegradedModeConfig())
    router = ReplicaRouter(_engines(), policy="least_loaded", **kwargs)
    start = time.perf_counter()
    report = router.run(_trace(), telemetry="full",
                        max_steps=1_000_000_000)
    return report, round(time.perf_counter() - start, 2)


def _classes(report) -> dict:
    out = {}
    for name, s in report.tenant_stats.items():
        out[name] = {
            "n_requests": s["n_requests"],
            "n_rejected": s["n_rejected"],
            "n_failed": s.get("n_failed", 0),
            "goodput_tokens_per_s": round(s["goodput_tokens_per_s"], 1),
            "p99_ttft_ms": round(s["p99_ttft_s"] * 1e3, 3)
            if s["p99_ttft_s"] is not None else None}
    return out


def bench_resilience_crash_at_knee(save_result):
    """Single-replica crash-and-recover vs the healthy baseline."""
    healthy, healthy_wall = _run(chaos=False)
    chaos, chaos_wall = _run(chaos=True)
    res = chaos.resilience

    schedule = _schedule()
    event = schedule.events[0]
    section = {
        "model": TINY_MODEL.name, "mode": SWEEP_MODE,
        "n_requests": N_REQUESTS, "replicas": REPLICAS,
        "max_batch": MAX_BATCH, "kv_token_budget": KV_BUDGET,
        "arrival_rate_rps": LOAD_RPS, "fault_seed": FAULT_SEED,
        "trace_seed": TRACE_SEED,
        "fault": {"kind": event.kind, "replica": event.replica,
                  "at_ms": round(event.start_s * 1e3, 3),
                  "downtime_ms": round(event.duration_s * 1e3, 3),
                  "warmup_ms": round(event.warmup_s * 1e3, 3)},
        "healthy": {
            "classes": _classes(healthy),
            "goodput_tokens_per_s": round(
                healthy.total_new_tokens / healthy.total_time_s, 1),
            "wall_s": healthy_wall},
        "chaos": {
            "classes": _classes(chaos),
            "goodput_tokens_per_s": round(
                chaos.total_new_tokens / chaos.total_time_s, 1),
            "resilience": {k: (list(v) if isinstance(v, tuple) else v)
                           for k, v in res.items()},
            "wall_s": chaos_wall},
    }
    RECORD["sections"]["crash_at_knee"] = section

    # CI floors.  Acceptance: a crash costs latency, never requests.
    assert res["n_lost"] == 0, res
    assert not res["lost_request_ids"], res
    # The crash must actually hit in-flight work, and recovery must
    # complete: every killed request re-dispatched, none exhaust the
    # retry budget with two healthy survivors.
    assert res["n_crashes"] == 1 and res["n_killed"] > 0, res
    assert res["n_redispatched"] == res["n_killed"], res
    assert res["n_failed"] == 0, res
    assert res["mttr_s"] is not None and res["downtime_s"] > 0, res
    # The survivors keep serving through the outage.
    assert res["goodput_degraded_tokens_per_s"] is not None \
        and res["goodput_degraded_tokens_per_s"] > 0, res
    # Every admitted request is accounted for: retired, failed, or shed.
    assert chaos.n_requests == N_REQUESTS, chaos.n_requests
    # Degraded-mode admission sheds only while capacity is down, and
    # never the interactive class.
    assert section["chaos"]["classes"]["interactive"]["n_rejected"] == 0, section
    # Bounded interactive latency through the crash: the p99 TTFT may
    # spike (killed work re-queues behind backoff, the backlog built
    # during the outage drains at reduced capacity) but the tail is the
    # crash, not a persistent degradation — it stays inside one outage
    # window (downtime + warm-up), and it must genuinely cost more
    # than the healthy baseline or the fault never engaged.
    fg_healthy = section["healthy"]["classes"]["interactive"][
        "p99_ttft_ms"]
    fg_chaos = section["chaos"]["classes"]["interactive"]["p99_ttft_ms"]
    outage_ms = section["fault"]["downtime_ms"] \
        + section["fault"]["warmup_ms"]
    assert fg_healthy < fg_chaos <= outage_ms, \
        (fg_healthy, fg_chaos, outage_ms)
    # Goodput recovery: losing 1/3 capacity for ~20% of the arrival
    # span must not halve cluster throughput.
    assert section["chaos"]["goodput_tokens_per_s"] \
        >= 0.5 * section["healthy"]["goodput_tokens_per_s"], section
    save_result("resilience_crash_at_knee",
                json.dumps(section, indent=2))


def bench_resilience_replay_identical(save_result):
    """Same fault seed + trace seed -> bit-identical chaos report."""
    first, _ = _run(chaos=True)
    second, _ = _run(chaos=True)
    assert first.resilience == second.resilience
    assert first.total_time_s == second.total_time_s
    assert first.n_steps == second.n_steps
    assert len(first.results) == len(second.results)
    for a, b in zip(first.results, second.results):
        assert (a.request_id, a.tokens, a.prompt_len, a.ttft_s,
                a.e2e_s, a.finish_reason, a.preemptions) == \
            (b.request_id, b.tokens, b.prompt_len, b.ttft_s,
             b.e2e_s, b.finish_reason, b.preemptions), (a, b)
    RECORD["sections"]["replay"] = {
        "mode": SWEEP_MODE, "n_requests": N_REQUESTS,
        "fault_seed": FAULT_SEED, "trace_seed": TRACE_SEED,
        "bit_identical": True}
    save_result("resilience_replay",
                f"chaos replay over {N_REQUESTS} requests: "
                f"{len(first.results)} results, resilience + per-request "
                f"fields bit-identical across runs")


def bench_write_record(save_result):
    """Persist the machine-readable record (runs last in this file)."""
    assert set(RECORD["sections"]) == {"crash_at_knee", "replay"}
    RECORD["note"] = (
        "single-replica crash-and-recover at the three-replica "
        "saturation knee vs the healthy baseline on the identical "
        "trace; fault injection, retry, and recovery are deterministic "
        "simulator observables (wall_s is harness time); replay "
        "section pins the bit-identical same-seed contract")
    RECORD_PATH.write_text(json.dumps(RECORD, indent=2) + "\n")

    section = RECORD["sections"]["crash_at_knee"]
    res = section["chaos"]["resilience"]
    lines = [
        "Fault-tolerant cluster serving — crash-and-recover at the knee",
        f"model {section['model']}, {section['n_requests']:,} requests, "
        f"{section['replicas']} replicas, load "
        f"{section['arrival_rate_rps']:,.0f} rps, mode {section['mode']}",
        f"crash: replica {section['fault']['replica']} at "
        f"{section['fault']['at_ms']:.3f} ms for "
        f"{section['fault']['downtime_ms']:.3f} ms "
        f"(+{section['fault']['warmup_ms']:.3f} ms warm-up)", "",
        f"  killed {res['n_killed']}, redispatched "
        f"{res['n_redispatched']}, failed {res['n_failed']}, shed "
        f"{res['n_shed']}, lost {res['n_lost']} "
        f"(retry rounds {res['retry_rounds']})",
        f"  mttr {res['mttr_s'] * 1e3:.3f} ms, degraded goodput "
        f"{res['goodput_degraded_tokens_per_s']:,.0f} tok/s",
        f"  goodput {section['chaos']['goodput_tokens_per_s']:,.0f} "
        f"(chaos) vs {section['healthy']['goodput_tokens_per_s']:,.0f} "
        f"(healthy) tok/s",
        f"  interactive p99 TTFT "
        f"{section['chaos']['classes']['interactive']['p99_ttft_ms']:.3f} "
        f"(chaos) vs "
        f"{section['healthy']['classes']['interactive']['p99_ttft_ms']:.3f} "
        f"(healthy) ms",
    ]
    save_result("resilience", "\n".join(lines))

    # Mirror the headline numbers into the diffable run store so
    # ``repro obs diff`` tracks resilience drift commit over commit.
    from repro.obs import RunStore

    metrics = {
        "n_killed": res["n_killed"],
        "n_redispatched": res["n_redispatched"],
        "n_failed": res["n_failed"],
        "n_shed": res["n_shed"],
        "n_lost": res["n_lost"],
        "retry_rounds": res["retry_rounds"],
        "mttr_s": res["mttr_s"],
        "downtime_s": res["downtime_s"],
        "goodput_degraded_tokens_per_s":
            res["goodput_degraded_tokens_per_s"],
        "chaos_goodput_tokens_per_s":
            section["chaos"]["goodput_tokens_per_s"],
        "healthy_goodput_tokens_per_s":
            section["healthy"]["goodput_tokens_per_s"],
        "chaos_interactive_p99_ttft_ms":
            section["chaos"]["classes"]["interactive"]["p99_ttft_ms"],
        "healthy_interactive_p99_ttft_ms":
            section["healthy"]["classes"]["interactive"]["p99_ttft_ms"],
    }
    store = RunStore(REPO_ROOT / "benchmarks" / "runs")
    store.save(store.record(
        "faults", {"bench": "resilience", "mode": SWEEP_MODE,
                   "n_requests": N_REQUESTS, "replicas": REPLICAS,
                   "fault_seed": FAULT_SEED, "trace_seed": TRACE_SEED},
        metrics))


if __name__ == "__main__":
    def _print_result(name, text):
        print(f"[{name}]\n{text}\n")

    bench_resilience_crash_at_knee(_print_result)
    bench_resilience_replay_identical(_print_result)
    bench_write_record(_print_result)
