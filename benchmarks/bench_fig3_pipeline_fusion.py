"""Fig. 3 — the fused head-wise attention dataflow.

Regenerates the pipeline schedule and verifies the paper's claim that all
miscellaneous operations (RoPE, softmax, KV quantization, residual/square
sum) hide inside the dense computation with no cycle penalties, against
a DFX-style coarse-grained baseline that pays them serially.
"""

import pytest

from repro.config import LLAMA2_7B, W4A16_KV8
from repro.report.figures import fig3_pipeline_comparison
from repro.runtime.trace import Trace


def _render(fig: dict, context: int) -> str:
    fused = fig["fused_report"]
    head = Trace.from_attention_report(fused)
    head.events = head.events[:12]  # first two heads' stages + misc
    return "\n".join([
        f"Fig. 3 — attention pipeline at context {context} (one layer)",
        f"  fused cycles   : {fig['fused_cycles']:12.0f}"
        f"   exposed misc: {fig['fused_exposed_misc']:.0f}",
        f"  coarse cycles  : {fig['coarse_cycles']:12.0f}"
        f"   exposed misc: {fig['coarse_exposed_misc']:.0f}",
        f"  coarse penalty : {fig['coarse_penalty']:12.1%}",
        f"  all misc hidden: {fig['fused_all_hidden']}",
        "",
        "  first stages of the fused schedule (#dense ~misc):",
        head.render(width=60),
    ])


def bench_fig3(benchmark, save_result):
    context = 512
    fig = benchmark(fig3_pipeline_comparison, LLAMA2_7B, W4A16_KV8, context)
    save_result("fig3_pipeline_fusion", _render(fig, context))

    assert fig["fused_all_hidden"]
    assert fig["fused_exposed_misc"] == 0
    assert fig["coarse_exposed_misc"] > 0
    assert fig["coarse_penalty"] > 0.03


def bench_fig3_full_context(benchmark):
    fig = benchmark(fig3_pipeline_comparison, LLAMA2_7B, W4A16_KV8, 1023)
    # The penalty grows with context (softmax exposure scales with it).
    assert fig["coarse_penalty"] > fig3_pipeline_comparison(
        LLAMA2_7B, W4A16_KV8, 64)["coarse_penalty"]
