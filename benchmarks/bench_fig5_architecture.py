"""Fig. 5 — hardware architecture rate matching.

The design is balanced at 300 MHz: four 128-bit AXI ports deliver exactly
the DDR4 peak (64 B/cycle), the dequantizer turns each 512-bit beat into
128 FP16 weights, and the 128-lane DOT engine consumes them in one cycle.
This benchmark verifies the MCU/VPU rate match and that every SPU
submodule is fast enough to hide inside its window at full context.
"""

import numpy as np
import pytest

from repro.config import KV260
from repro.core.dequant import Dequantizer
from repro.core.vpu import DotEngine
from repro.quant.groupquant import pack_codes
from repro.report.figures import fig5_component_throughput


def _render(fig: dict) -> str:
    return "\n".join([
        "Fig. 5 — component rate matching at 300 MHz",
        f"  MCU stream      : {fig['mcu_bytes_per_cycle']:.0f} B/cycle "
        "(4 x 128-bit AXI)",
        f"  VPU consumption : {fig['vpu_weight_bytes_per_cycle']:.0f} "
        "B/cycle (128 lanes x 4-bit)",
        f"  rate matched    : {fig['rate_matched']}",
        f"  SPU softmax     : {fig['spu_softmax_cycles']} cycles @ctx 512",
        f"  SPU rope        : {fig['spu_rope_cycles']} cycles/head",
        f"  SPU rmsnorm     : {fig['spu_rmsnorm_cycles']} cycles",
        f"  SPU quant       : {fig['spu_quant_cycles']} cycles/head",
    ])


def bench_fig5(benchmark, save_result):
    fig = benchmark(fig5_component_throughput, 512)
    save_result("fig5_architecture", _render(fig))
    assert fig["rate_matched"]
    assert fig["mcu_bytes_per_cycle"] == KV260.bus_bytes_per_cycle


def bench_fig5_dequantizer_throughput(benchmark, rng=None):
    """Functional dequantizer keeps up: one 512-bit word per call."""
    rng = np.random.default_rng(0)
    dq = Dequantizer()
    codes = rng.integers(0, 16, 128).astype(np.uint8)
    word = pack_codes(codes, 4)
    out = benchmark(dq.dequantize_word, word, 0.02, 8)
    assert out.shape == (128,)


def bench_fig5_dot_engine_gemv(benchmark):
    """VPU issue-cycle accounting for the largest single GEMV (lm_head)."""
    eng = DotEngine()
    cycles = benchmark(eng.matvec_cycles, 32000, 4096)
    assert cycles == 32000 * 32
