"""Table II — performance comparison with existing FPGA research.

Regenerates every row (DFX, FlightLLM, EdgeLLM, SECDA-LLM, LlamaF, ours)
with recomputed theoretical token/s and utilization, plus our row measured
by the cycle model.  The asserted *shape*: the paper's utilizations are
reproduced, and the KV260 design leads by a wide margin.
"""

import pytest

from repro.baselines.entries import OUR_ENTRY, TABLE_II_ENTRIES
from repro.report.tables import table2_fpga

PAPER_UTILIZATION = {
    "DFX": 0.137,
    "FlightLLM": 0.42,
    "EdgeLLM": 0.49,
    "SECDA-LLM": 0.152,
    "LlamaF": 0.077,
}


def bench_table2(benchmark, save_result):
    rows, text = benchmark(table2_fpga, 1023)
    save_result("table2_fpga_comparison", text)

    by_name = {r["name"]: r for r in rows}
    for name, util in PAPER_UTILIZATION.items():
        assert by_name[name]["utilization"] == pytest.approx(util,
                                                             abs=0.02), name

    ours = by_name["Ours (simulated)"]
    assert ours["theoretical"] == pytest.approx(5.8, abs=0.05)
    assert ours["tokens_per_s"] == pytest.approx(4.9, abs=0.15)
    assert ours["utilization"] == pytest.approx(0.845, abs=0.02)
    # Who wins: ours beats every other FPGA system by > 1.7x utilization.
    best_other = max(e.utilization for e in TABLE_II_ENTRIES)
    assert ours["utilization"] > 1.7 * best_other
    assert OUR_ENTRY.reported_utilization == pytest.approx(
        ours["utilization"], abs=0.02)
