"""End-to-end decode: the headline 'around 5 token/s' across contexts,
and a full functional generation on a tiny model through the whole stack
(tokenizer -> quantized pipeline -> cycle model).
"""

import pytest

from repro.config import KV260, LLAMA2_7B, TINY_MODEL, W4A16_KV8, QuantConfig
from repro.core.cyclemodel import CycleModel
from repro.model.weights import quantize_model, random_weights
from repro.runtime.session import InferenceSession


def _render(sweep) -> str:
    lines = ["Context sweep — LLaMA2-7B W4A16/KV8 on KV260 (fused pipeline)",
             "  ctx    token/s   util"]
    for step in sweep:
        lines.append(f"  {step.context:4d}   {step.tokens_per_s:7.3f}"
                     f"   {step.utilization:6.1%}")
    return "\n".join(lines)


def bench_context_sweep(benchmark, save_result):
    cm = CycleModel(LLAMA2_7B, W4A16_KV8, KV260)
    contexts = [0, 128, 256, 512, 768, 1023]
    sweep = benchmark(cm.context_sweep, contexts)
    save_result("end_to_end_context_sweep", _render(sweep))

    assert sweep[-1].tokens_per_s == pytest.approx(4.9, abs=0.15)
    assert sweep[-1].utilization == pytest.approx(0.845, abs=0.02)
    assert all(s.utilization > 0.8 for s in sweep)


def bench_time_breakdown(benchmark, save_result):
    """Per-region bus-time profile of one decode step (ctx 512)."""
    from repro.core.commands import CommandGenerator
    from repro.memory.profiler import profile_decode_step
    from repro.packing.memimage import build_memory_image

    image = build_memory_image(LLAMA2_7B, W4A16_KV8, context=1024)
    gen = CommandGenerator(image)
    descriptors = gen.decode_step_descriptors(16, 512)

    profile = benchmark(profile_decode_step, descriptors)
    save_result("end_to_end_time_breakdown", profile.render())

    # Weight streaming owns the bus; KV reads are the growing second term.
    assert profile.time_fraction("weights") > 0.9
    assert profile.time_fraction("kv read") > 0.02
    assert 1e9 / profile.total_ns == pytest.approx(5.1, abs=0.25)


def bench_functional_generation(benchmark, save_result):
    """Tiny-model text generation through the complete simulated system."""
    qw = quantize_model(random_weights(TINY_MODEL, seed=7),
                        QuantConfig(weight_group_size=32))
    session = InferenceSession(qw, check_capacity=False)

    result = benchmark.pedantic(
        session.generate, args=("FPGA",), kwargs={"max_new_tokens": 8},
        iterations=1, rounds=3)
    save_result(
        "end_to_end_generation",
        f"prompt: {result.prompt!r}\ncompletion bytes: {result.tokens}\n"
        f"simulated decode rate: {result.perf.tokens_per_s:.1f} token/s "
        f"(tiny model on the KV260 timing model)")
    assert len(result.tokens) <= 8
    assert result.perf.tokens_per_s > 0
