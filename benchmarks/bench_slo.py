"""Multi-tenant SLO serving: priority scheduling vs FIFO under load.

The PR 7 tenancy layer claims that priority-ordered admission plus
priority-aware preemption buys interactive traffic its TTFT SLO out of
the same pool that FIFO serves — paying with batch/best-effort latency
and a bounded slice of total throughput, not with extra hardware.  This
benchmark measures that trade on a mixed-tenant synthetic sweep
(25% interactive, 50% batch with a KV quota, 25% best-effort with a
smaller quota) at three arrival rates spanning light load, the
saturation knee, and full overload.

At every load point the identical trace runs twice through the same
engine configuration: once with tenancy active, once with every request
retagged to the default tenant — plain FIFO, the pre-PR scheduler
behavior.  Interactive p99 TTFT for the FIFO run is computed over the
same request-id subset, so the comparison is request-for-request at
equal offered load.

Results go to ``BENCH_slo.json`` at the repo root and
``benchmarks/results/slo.txt``.  The assertions double as the CI smoke
budget (``SLO_SWEEP=smoke`` scales the sweep down): priority admission
must beat FIFO on interactive p99 TTFT by a wide margin past the knee,
and the total-goodput tax for that protection stays bounded.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import time

from repro.config import TINY_MODEL, QuantConfig
from repro.engine import (
    ContinuousBatchScheduler,
    CycleModelBackend,
    DEFAULT_TENANT,
    TenantSpec,
    synthetic_trace,
)
from repro.stats import percentile_of_sorted

REPO_ROOT = pathlib.Path(__file__).parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_slo.json"

QUANT = QuantConfig(weight_group_size=32)
MAX_BATCH = 8
KV_BUDGET = 256

#: 25% interactive (5ms TTFT target, no quota), 50% batch capped at 160
#: cached KV tokens, 25% best-effort capped at 96 — the quota classes
#: exercise quota admission + same-tenant eviction under decode growth.
MIX = ((TenantSpec("fg", "interactive", ttft_slo_s=0.005), 0.25),
       (TenantSpec("bulk", "batch", kv_quota_tokens=160), 0.5),
       (TenantSpec("bg", "best_effort", kv_quota_tokens=96), 0.25))

#: ``full`` is the committed record (100k requests per run, three load
#: points); ``smoke`` is the CI budget with the same floor assertions.
SWEEP_MODE = os.environ.get("SLO_SWEEP", "full")
N_REQUESTS = 12_000 if SWEEP_MODE == "smoke" else 100_000
#: Arrival rates: light load, the saturation knee, full overload
#: (pool tokens/s is ~110k at this config; smoke keeps knee+overload).
LOADS = (12_000.0, 25_000.0) if SWEEP_MODE == "smoke" \
    else (5_000.0, 12_000.0, 25_000.0)

RECORD: dict = {"schema": "slo-v1", "sections": {}}


def _engine() -> ContinuousBatchScheduler:
    backend = CycleModelBackend(TINY_MODEL, QUANT, n_slots=MAX_BATCH)
    return ContinuousBatchScheduler(backend, max_batch=MAX_BATCH,
                                    kv_token_budget=KV_BUDGET,
                                    fast_forward="multi")


def _trace(rate: float) -> list:
    return synthetic_trace(TINY_MODEL, N_REQUESTS, arrival_rate_rps=rate,
                           seed=23, prompt_len=(3, 10),
                           decode_len=(6, 28), tenant_mix=MIX)


def _run(trace) -> tuple:
    start = time.perf_counter()
    report = _engine().run(trace, max_steps=1_000_000_000,
                           telemetry="windows")
    return report, round(time.perf_counter() - start, 2)


def _load_point(rate: float) -> dict:
    trace = _trace(rate)
    fg_ids = {r.request_id for r in trace
              if r.tenant.priority == "interactive"}
    prio, prio_wall = _run(trace)
    fifo, fifo_wall = _run([dataclasses.replace(r, tenant=DEFAULT_TENANT)
                            for r in trace])

    # FIFO per-class view: same request-id subset, same offered load.
    fifo_fg = sorted(r.ttft_s for r in fifo.results
                     if r.request_id in fg_ids and r.ttft_s is not None)
    stats = prio.tenant_stats
    classes = {name: {"n_requests": s["n_requests"],
                      "n_rejected": s["n_rejected"],
                      "goodput_tokens_per_s":
                          round(s["goodput_tokens_per_s"], 1),
                      "p50_ttft_ms": round(s["p50_ttft_s"] * 1e3, 3)
                      if s["p50_ttft_s"] is not None else None,
                      "p99_ttft_ms": round(s["p99_ttft_s"] * 1e3, 3)
                      if s["p99_ttft_s"] is not None else None}
               for name, s in stats.items()}
    return {
        "arrival_rate_rps": rate,
        "priority": {
            "classes": classes,
            "total_goodput_tokens_per_s": round(
                sum(s["goodput_tokens_per_s"] for s in stats.values()),
                1),
            "preemptions": prio.preemptions,
            "wall_s": prio_wall,
        },
        "fifo": {
            "interactive_p99_ttft_ms": round(
                percentile_of_sorted(fifo_fg, 99) * 1e3, 3),
            "interactive_p50_ttft_ms": round(
                percentile_of_sorted(fifo_fg, 50) * 1e3, 3),
            "total_goodput_tokens_per_s": round(
                fifo.total_new_tokens / fifo.total_time_s, 1),
            "preemptions": fifo.preemptions,
            "wall_s": fifo_wall,
        },
    }


def bench_slo_load_sweep(save_result):
    """Interactive p99 TTFT and goodput vs load: priority vs FIFO."""
    rows = [_load_point(rate) for rate in LOADS]
    section = {"model": TINY_MODEL.name, "mode": SWEEP_MODE,
               "n_requests": N_REQUESTS, "max_batch": MAX_BATCH,
               "kv_token_budget": KV_BUDGET,
               "mix": [{"name": spec.name, "priority": spec.priority,
                        "kv_quota_tokens": spec.kv_quota_tokens,
                        "ttft_slo_s": spec.ttft_slo_s, "share": share}
                       for spec, share in MIX],
               "rows": rows}
    RECORD["sections"]["load_sweep"] = section

    # CI floors.  Acceptance: priority admission + preemption improves
    # interactive p99 TTFT over FIFO at equal load — recorded ~2.6x at
    # light load and >100x past the knee; the floors leave margin.
    for row in rows:
        prio_p99 = row["priority"]["classes"]["interactive"][
            "p99_ttft_ms"]
        fifo_p99 = row["fifo"]["interactive_p99_ttft_ms"]
        assert prio_p99 < fifo_p99, row
        # Protecting interactive latency must not collapse throughput:
        # the goodput tax stays bounded at every load point.
        assert row["priority"]["total_goodput_tokens_per_s"] \
            >= 0.75 * row["fifo"]["total_goodput_tokens_per_s"], row
        assert row["priority"]["classes"]["interactive"][
            "n_rejected"] == 0, row
    knee = rows[-2] if len(rows) > 2 else rows[0]
    overload = rows[-1]
    for row in (knee, overload):
        prio_p99 = row["priority"]["classes"]["interactive"][
            "p99_ttft_ms"]
        assert prio_p99 * 10 < row["fifo"]["interactive_p99_ttft_ms"], \
            row
    # Quota + priority pressure must actually engage past the knee.
    assert overload["priority"]["preemptions"] > 0, overload
    save_result("slo_load_sweep", json.dumps(rows, indent=2))


def bench_write_record(save_result):
    """Persist the machine-readable record (runs last in this file)."""
    assert set(RECORD["sections"]) == {"load_sweep"}
    RECORD["note"] = (
        "priority vs FIFO on the identical mixed-tenant trace at equal "
        "offered load; scheduling-policy outcomes are exact simulator "
        "observables, wall_s is harness time (tiers are bit-identical; "
        "see tests/test_tenancy.py)")
    RECORD_PATH.write_text(json.dumps(RECORD, indent=2) + "\n")

    sweep = RECORD["sections"]["load_sweep"]
    lines = [
        "Multi-tenant SLO serving — priority scheduling vs FIFO",
        f"model {sweep['model']}, {sweep['n_requests']:,} requests/run, "
        f"batch {sweep['max_batch']}, KV {sweep['kv_token_budget']} "
        f"tokens, mode {sweep['mode']}", ""]
    for row in sweep["rows"]:
        fg = row["priority"]["classes"]["interactive"]
        lines.append(
            f"  load {row['arrival_rate_rps']:>8,.0f} rps: interactive "
            f"p99 TTFT {fg['p99_ttft_ms']:>9.3f} ms (priority) vs "
            f"{row['fifo']['interactive_p99_ttft_ms']:>9.3f} ms (FIFO), "
            f"goodput {row['priority']['total_goodput_tokens_per_s']:>9,.0f}"
            f" vs {row['fifo']['total_goodput_tokens_per_s']:>9,.0f} tok/s,"
            f" {row['priority']['preemptions']} preemptions")
    save_result("slo", "\n".join(lines))

    # Mirror the headline numbers into the diffable run store (one flat
    # metric per load point), so ``repro obs diff`` tracks SLO drift.
    from repro.obs import RunStore

    metrics = {}
    for row in sweep["rows"]:
        rate = f"{row['arrival_rate_rps']:.0f}rps"
        fg = row["priority"]["classes"]["interactive"]
        metrics[f"{rate}.interactive_p99_ttft_ms"] = fg["p99_ttft_ms"]
        metrics[f"{rate}.fifo_interactive_p99_ttft_ms"] = \
            row["fifo"]["interactive_p99_ttft_ms"]
        metrics[f"{rate}.goodput_tokens_per_s"] = \
            row["priority"]["total_goodput_tokens_per_s"]
        metrics[f"{rate}.preemptions"] = row["priority"]["preemptions"]
    store = RunStore(REPO_ROOT / "benchmarks" / "runs")
    store.save(store.record(
        "slo", {"bench": "slo", "mode": SWEEP_MODE,
                "n_requests": N_REQUESTS}, metrics))


if __name__ == "__main__":
    def _print_result(name, text):
        print(f"[{name}]\n{text}\n")

    bench_slo_load_sweep(_print_result)
    bench_write_record(_print_result)
