"""Simulator-performance trajectory: how fast the simulator itself runs.

Every other benchmark in this directory measures the *modeled* hardware;
this one measures the wall-clock cost of running the models.  Each
section times an optimized path against the pre-optimization baseline
kept in-tree for exactly this purpose (and for the bit-exactness tests):

* functional decode — ``QuantizedModel.forward_batch`` (stacked
  matmuls, batched attention kernels, vectorized KV gathers) vs the
  scalar per-token reference ``forward_token_reference`` at batch 1, 8,
  and 16;
* functional prefill — all prompt positions per layer as one matmul vs
  the sequential scalar path;
* timing-backend sweeps — a 1k-request continuous-batching run on the
  cycle-model and analytical backends with memoized step costs plus the
  scheduler's fast-forward windows, vs ``reference_costs=True`` with
  the step-by-step loop (the pre-optimization cost path, still the
  oracle of the differential tests).

Results go to ``BENCH_simperf.json`` at the repo root (machine-readable
trajectory for later PRs to diff) and ``benchmarks/results/simperf.txt``.
The assertions double as the CI smoke budget: optimized wall times and
minimum speedups that fail loudly on regression.  Speedup floors are set
well under the recorded values to absorb shared-runner noise.

All timed pairs compute bit-identical results — that is pinned by
``tests/test_batched_kernels.py`` and ``tests/test_backend_equivalence.py``,
not here.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.config import SMALL_MODEL, TINY_MODEL, QuantConfig
from repro.engine import (
    AnalyticalBackend,
    ContinuousBatchScheduler,
    CycleModelBackend,
    synthetic_trace,
)
from repro.model.kvcache import SlottedKVCache
from repro.model.quantized import QuantizedModel
from repro.model.weights import quantize_model, random_weights

REPO_ROOT = pathlib.Path(__file__).parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_simperf.json"

QUANT = QuantConfig(weight_group_size=32)
DECODE_CONTEXT = 96
DECODE_BATCHES = (1, 8, 16)
SWEEP_REQUESTS = 1000

#: accumulated section results, written by bench_write_record (last in
#: file, so pytest runs it after every measuring bench).
RECORD: dict = {"schema": "simperf-v1", "sections": {}}


def _model(config=SMALL_MODEL) -> QuantizedModel:
    return QuantizedModel(quantize_model(random_weights(config, seed=7),
                                         QUANT))


def _prefilled_views(model, batch: int, context: int):
    slots = SlottedKVCache(model.config, batch, QUANT.kv_bits)
    prompt = [1 + (i % (model.config.vocab_size - 2))
              for i in range(context)]
    views = []
    for _ in range(batch):
        slot = slots.allocate()
        model.prefill(prompt, slots.view(slot))
        views.append(slots.view(slot))
    return views


def bench_functional_decode(save_result):
    """Batched decode vs the scalar per-sequence reference path."""
    model = _model()
    rows = []
    for batch in DECODE_BATCHES:
        views = _prefilled_views(model, batch, DECODE_CONTEXT)
        ref_views = _prefilled_views(model, batch, DECODE_CONTEXT)
        tokens = [10 + i for i in range(batch)]

        steps = 3 if batch >= 8 else 4
        start = time.perf_counter()
        for j in range(steps):
            for i in range(batch):
                model.forward_token_reference(tokens[i], ref_views[i],
                                              DECODE_CONTEXT + j)
        baseline_ms = (time.perf_counter() - start) / steps * 1e3

        steps = 8
        start = time.perf_counter()
        for j in range(steps):
            model.forward_batch(tokens, views,
                                [DECODE_CONTEXT + j] * batch)
        optimized_ms = (time.perf_counter() - start) / steps * 1e3

        rows.append({"batch": batch, "context": DECODE_CONTEXT,
                     "baseline_ms_per_step": round(baseline_ms, 2),
                     "optimized_ms_per_step": round(optimized_ms, 2),
                     "speedup": round(baseline_ms / optimized_ms, 2)})
    RECORD["sections"]["functional_decode"] = {
        "model": model.config.name, "rows": rows}
    # Smoke budget: the batched path must stay fast and clearly ahead.
    headline = rows[-1]
    assert headline["optimized_ms_per_step"] < 500
    assert headline["speedup"] >= 4.0
    save_result("simperf_decode", json.dumps(rows, indent=2))


def bench_functional_prefill(save_result):
    """Whole-prompt-per-layer prefill vs sequential scalar forwards."""
    model = _model()
    prompt = list(range(1, DECODE_CONTEXT + 1))

    from repro.model.kvcache import QuantizedKVCache

    start = time.perf_counter()
    cache = QuantizedKVCache(model.config, QUANT.kv_bits)
    for pos, tok in enumerate(prompt):
        model.forward_token_reference(tok, cache, pos)
    baseline_ms = (time.perf_counter() - start) * 1e3

    start = time.perf_counter()
    model.prefill(prompt)
    optimized_ms = (time.perf_counter() - start) * 1e3

    section = {"model": model.config.name, "prompt_len": len(prompt),
               "baseline_ms": round(baseline_ms, 1),
               "optimized_ms": round(optimized_ms, 1),
               "speedup": round(baseline_ms / optimized_ms, 2)}
    RECORD["sections"]["functional_prefill"] = section
    assert section["speedup"] >= 2.0
    save_result("simperf_prefill", json.dumps(section, indent=2))


def _sweep(backend_cls, n_requests: int, reference: bool) -> dict:
    trace = synthetic_trace(TINY_MODEL, n_requests,
                            arrival_rate_rps=2000.0, seed=5,
                            prompt_len=(4, 16), decode_len=(8, 48))
    backend = backend_cls(TINY_MODEL, QUANT, n_slots=16,
                          reference_costs=reference)
    engine = ContinuousBatchScheduler(backend, max_batch=16,
                                      fast_forward=not reference)
    start = time.perf_counter()
    report = engine.run(trace)
    wall_s = time.perf_counter() - start
    return {"wall_s": round(wall_s, 3), "n_steps": report.n_steps,
            "total_time_s": report.total_time_s}


def bench_timing_backend_sweeps(save_result):
    """1k-request serving sweeps: memoized + fast-forwarded vs the
    original schedule/traffic builders stepped one by one."""
    rows = {}
    for name, cls in (("cycle", CycleModelBackend),
                      ("analytical", AnalyticalBackend)):
        baseline = _sweep(cls, SWEEP_REQUESTS, reference=True)
        optimized = _sweep(cls, SWEEP_REQUESTS, reference=False)
        # Same trace, same scheduler: the simulated outcome is identical
        # (the equivalence tests pin it bitwise); only wall time moves.
        assert baseline["n_steps"] == optimized["n_steps"]
        rows[name] = {
            "n_requests": SWEEP_REQUESTS,
            "n_steps": optimized["n_steps"],
            "baseline_wall_s": baseline["wall_s"],
            "optimized_wall_s": optimized["wall_s"],
            "speedup": round(baseline["wall_s"] / optimized["wall_s"], 1),
        }
    RECORD["sections"]["timing_sweeps"] = {"model": TINY_MODEL.name,
                                           "rows": rows}
    # Smoke budgets: the optimized 1k-request sweep must stay cheap and
    # the cycle-model path decisively faster than the full builders.
    assert rows["cycle"]["optimized_wall_s"] < 20.0
    assert rows["cycle"]["speedup"] >= 10.0
    assert rows["analytical"]["speedup"] >= 1.2
    save_result("simperf_sweeps", json.dumps(rows, indent=2))


def bench_write_record(save_result):
    """Persist the machine-readable trajectory (runs last in this file)."""
    sections = RECORD["sections"]
    assert set(sections) == {"functional_decode", "functional_prefill",
                             "timing_sweeps"}, sections
    RECORD["note"] = (
        "wall-clock of the simulator itself; every optimized/baseline "
        "pair computes bit-identical results (see "
        "tests/test_batched_kernels.py and "
        "tests/test_backend_equivalence.py)")
    RECORD_PATH.write_text(json.dumps(RECORD, indent=2) + "\n")

    lines = ["Simulator performance (simperf) — optimized vs in-tree "
             "pre-optimization baselines",
             f"functional model: {SMALL_MODEL.name}, timing sweeps: "
             f"{TINY_MODEL.name} x {SWEEP_REQUESTS} requests", ""]
    for row in sections["functional_decode"]["rows"]:
        lines.append(
            f"  decode  batch {row['batch']:2d} @ctx {row['context']}: "
            f"{row['baseline_ms_per_step']:9.1f} -> "
            f"{row['optimized_ms_per_step']:7.1f} ms/step "
            f"({row['speedup']:.1f}x)")
    pf = sections["functional_prefill"]
    lines.append(f"  prefill {pf['prompt_len']} tokens:      "
                 f"{pf['baseline_ms']:9.1f} -> {pf['optimized_ms']:7.1f} "
                 f"ms      ({pf['speedup']:.1f}x)")
    for name, row in sections["timing_sweeps"]["rows"].items():
        lines.append(
            f"  {name:10s} sweep ({row['n_requests']} req, "
            f"{row['n_steps']} steps): {row['baseline_wall_s']:7.2f} -> "
            f"{row['optimized_wall_s']:6.2f} s   ({row['speedup']:.1f}x)")
    save_result("simperf", "\n".join(lines))


if __name__ == "__main__":
    def _print_result(name, text):
        print(f"[{name}]\n{text}\n")

    bench_functional_decode(_print_result)
    bench_functional_prefill(_print_result)
    bench_timing_backend_sweeps(_print_result)
    bench_write_record(_print_result)
