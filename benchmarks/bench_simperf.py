"""Simulator-performance trajectory: how fast the simulator itself runs.

Every other benchmark in this directory measures the *modeled* hardware;
this one measures the wall-clock cost of running the models.  Each
section times an optimized path against the pre-optimization baseline
kept in-tree for exactly this purpose (and for the bit-exactness tests):

* functional decode — ``QuantizedModel.forward_batch`` (stacked
  matmuls, batched attention kernels, vectorized KV gathers) vs the
  scalar per-token reference ``forward_token_reference`` at batch 1, 8,
  and 16;
* functional prefill — all prompt positions per layer as one matmul vs
  the sequential scalar path;
* timing-backend sweeps — a 1k-request continuous-batching run on the
  cycle-model and analytical backends with memoized step costs plus the
  scheduler's fast-forward windows, vs ``reference_costs=True`` with
  the step-by-step loop (the pre-optimization cost path, still the
  oracle of the differential tests);
* sweep scale — streamed traces + run-length telemetry (the PR 5
  O(state-changes) path) vs the PR 4 pipeline (materialized trace,
  ``telemetry="full"``) at 10k/100k requests, a million-request
  streamed summary sweep, and tracemalloc peak-heap rows showing the
  windowed footprint stays flat while decoded tokens double.
  ``SIMPERF_SWEEP=smoke`` scales the points down to the CI budget;
* long decode — the PR 6 event-horizon tier (``fast_forward="multi"``)
  vs the PR 5 single-segment tier on a retirement-dominated paged-KV
  trace: bursts of 16 long decodes drained to empty before the next
  burst lands.  The single tier fragments every burst into block-sized
  windows (it cannot cross a block allocation or a retirement); the
  multi tier folds both into segments of one window per burst, so the
  recorded window count drops from O(requests) to O(admissions) and
  the sweep runs >= 3x faster with bit-identical reports.

Results go to ``BENCH_simperf.json`` at the repo root (machine-readable
trajectory for later PRs to diff) and ``benchmarks/results/simperf.txt``.
The assertions double as the CI smoke budget: optimized wall times and
minimum speedups that fail loudly on regression.  Speedup floors are set
well under the recorded values to absorb shared-runner noise.

All timed pairs compute bit-identical results — that is pinned by
``tests/test_batched_kernels.py`` and ``tests/test_backend_equivalence.py``,
not here.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import tracemalloc

import numpy as np

from repro.config import SMALL_MODEL, TINY_MODEL, QuantConfig
from repro.engine import (
    AnalyticalBackend,
    ContinuousBatchScheduler,
    CycleModelBackend,
    Request,
    iter_synthetic_trace,
    synthetic_trace,
)
from repro.model.kvcache import SlottedKVCache
from repro.model.quantized import QuantizedModel
from repro.model.weights import quantize_model, random_weights

REPO_ROOT = pathlib.Path(__file__).parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_simperf.json"

QUANT = QuantConfig(weight_group_size=32)
DECODE_CONTEXT = 96
DECODE_BATCHES = (1, 8, 16)
SWEEP_REQUESTS = 1000

#: ``full`` reproduces the committed record (10k / 100k / 1M points,
#: several minutes of wall time); ``smoke`` is the CI budget subset
#: with scaled-down points and the same floor assertions.
SWEEP_SCALE_MODE = os.environ.get("SIMPERF_SWEEP", "full")

#: accumulated section results, written by bench_write_record (last in
#: file, so pytest runs it after every measuring bench).
RECORD: dict = {"schema": "simperf-v4", "sections": {}}


def _model(config=SMALL_MODEL) -> QuantizedModel:
    return QuantizedModel(quantize_model(random_weights(config, seed=7),
                                         QUANT))


def _prefilled_views(model, batch: int, context: int):
    slots = SlottedKVCache(model.config, batch, QUANT.kv_bits)
    prompt = [1 + (i % (model.config.vocab_size - 2))
              for i in range(context)]
    views = []
    for _ in range(batch):
        slot = slots.allocate()
        model.prefill(prompt, slots.view(slot))
        views.append(slots.view(slot))
    return views


def bench_functional_decode(save_result):
    """Batched decode vs the scalar per-sequence reference path."""
    model = _model()
    rows = []
    for batch in DECODE_BATCHES:
        views = _prefilled_views(model, batch, DECODE_CONTEXT)
        ref_views = _prefilled_views(model, batch, DECODE_CONTEXT)
        tokens = [10 + i for i in range(batch)]

        steps = 3 if batch >= 8 else 4
        start = time.perf_counter()
        for j in range(steps):
            for i in range(batch):
                model.forward_token_reference(tokens[i], ref_views[i],
                                              DECODE_CONTEXT + j)
        baseline_ms = (time.perf_counter() - start) / steps * 1e3

        steps = 8
        start = time.perf_counter()
        for j in range(steps):
            model.forward_batch(tokens, views,
                                [DECODE_CONTEXT + j] * batch)
        optimized_ms = (time.perf_counter() - start) / steps * 1e3

        rows.append({"batch": batch, "context": DECODE_CONTEXT,
                     "baseline_ms_per_step": round(baseline_ms, 2),
                     "optimized_ms_per_step": round(optimized_ms, 2),
                     "speedup": round(baseline_ms / optimized_ms, 2)})
    RECORD["sections"]["functional_decode"] = {
        "model": model.config.name, "rows": rows}
    # Smoke budget: the batched path must stay fast and clearly ahead.
    headline = rows[-1]
    assert headline["optimized_ms_per_step"] < 500
    assert headline["speedup"] >= 4.0
    save_result("simperf_decode", json.dumps(rows, indent=2))


def bench_functional_prefill(save_result):
    """Whole-prompt-per-layer prefill vs sequential scalar forwards."""
    model = _model()
    prompt = list(range(1, DECODE_CONTEXT + 1))

    from repro.model.kvcache import QuantizedKVCache

    start = time.perf_counter()
    cache = QuantizedKVCache(model.config, QUANT.kv_bits)
    for pos, tok in enumerate(prompt):
        model.forward_token_reference(tok, cache, pos)
    baseline_ms = (time.perf_counter() - start) * 1e3

    start = time.perf_counter()
    model.prefill(prompt)
    optimized_ms = (time.perf_counter() - start) * 1e3

    section = {"model": model.config.name, "prompt_len": len(prompt),
               "baseline_ms": round(baseline_ms, 1),
               "optimized_ms": round(optimized_ms, 1),
               "speedup": round(baseline_ms / optimized_ms, 2)}
    RECORD["sections"]["functional_prefill"] = section
    assert section["speedup"] >= 2.0
    save_result("simperf_prefill", json.dumps(section, indent=2))


def _sweep(backend_cls, n_requests: int, reference: bool) -> dict:
    trace = synthetic_trace(TINY_MODEL, n_requests,
                            arrival_rate_rps=2000.0, seed=5,
                            prompt_len=(4, 16), decode_len=(8, 48))
    backend = backend_cls(TINY_MODEL, QUANT, n_slots=16,
                          reference_costs=reference)
    engine = ContinuousBatchScheduler(backend, max_batch=16,
                                      fast_forward=not reference)
    start = time.perf_counter()
    report = engine.run(trace)
    wall_s = time.perf_counter() - start
    return {"wall_s": round(wall_s, 3), "n_steps": report.n_steps,
            "total_time_s": report.total_time_s}


def bench_timing_backend_sweeps(save_result):
    """1k-request serving sweeps: memoized + fast-forwarded vs the
    original schedule/traffic builders stepped one by one."""
    rows = {}
    for name, cls in (("cycle", CycleModelBackend),
                      ("analytical", AnalyticalBackend)):
        baseline = _sweep(cls, SWEEP_REQUESTS, reference=True)
        optimized = _sweep(cls, SWEEP_REQUESTS, reference=False)
        # Same trace, same scheduler: the simulated outcome is identical
        # (the equivalence tests pin it bitwise); only wall time moves.
        assert baseline["n_steps"] == optimized["n_steps"]
        rows[name] = {
            "n_requests": SWEEP_REQUESTS,
            "n_steps": optimized["n_steps"],
            "baseline_wall_s": baseline["wall_s"],
            "optimized_wall_s": optimized["wall_s"],
            "speedup": round(baseline["wall_s"] / optimized["wall_s"], 1),
        }
    RECORD["sections"]["timing_sweeps"] = {"model": TINY_MODEL.name,
                                           "rows": rows}
    # Smoke budgets: the optimized 1k-request sweep must stay cheap and
    # the cycle-model path decisively faster than the full builders.
    assert rows["cycle"]["optimized_wall_s"] < 20.0
    assert rows["cycle"]["speedup"] >= 10.0
    assert rows["analytical"]["speedup"] >= 1.2
    save_result("simperf_sweeps", json.dumps(rows, indent=2))


SCALE_TRACE = dict(arrival_rate_rps=2000.0, seed=5, prompt_len=(4, 16))
SCALE_DECODE = (8, 48)


_SUBPROCESS_SWEEP = """
import json, resource, sys, time
from repro.config import TINY_MODEL, QuantConfig
from repro.engine import (ContinuousBatchScheduler, CycleModelBackend,
                          iter_synthetic_trace)

params = json.loads(sys.argv[1])
n, telemetry = params.pop("n_requests"), params.pop("telemetry")
quant = QuantConfig(weight_group_size=params.pop("weight_group_size"))
params["prompt_len"] = tuple(params["prompt_len"])
params["decode_len"] = tuple(params["decode_len"])
backend = CycleModelBackend(TINY_MODEL, quant, n_slots=16)
engine = ContinuousBatchScheduler(backend, max_batch=16)
start = time.perf_counter()
report = engine.run(iter_synthetic_trace(TINY_MODEL, n, **params),
                    max_steps=1_000_000_000, telemetry=telemetry)
wall_s = time.perf_counter() - start
row = {
    "n_requests": n, "telemetry": telemetry, "streamed": True,
    "wall_s": round(wall_s, 2), "n_steps": report.n_steps,
    "total_new_tokens": report.total_new_tokens,
    "p99_token_lat_ms": round(report.latency_percentile_s(99) * 1e3, 4),
    "peak_rss_mb": round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1),
}
if telemetry == "windows":
    records = report._rec.records
    row["records_mb"] = round(records.n_bytes / 1e6, 1)
    row["n_windows"] = records.n_windows
elif telemetry == "sketch":
    row["n_centroids"] = report.latency_digest().n_centroids
print(json.dumps(row))
"""


def _scale_run_subprocess(n_requests: int, telemetry: str) -> dict:
    """The streamed sweep in a fresh interpreter, so the recorded wall
    and peak RSS belong to this run alone (the parent process carries
    the eager baselines' retained heap).  The workload ships as argv
    from the same SCALE_TRACE/QUANT the in-process rows use."""
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    params = dict(SCALE_TRACE, n_requests=n_requests, telemetry=telemetry,
                  decode_len=SCALE_DECODE,
                  weight_group_size=QUANT.weight_group_size)
    out = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SWEEP, json.dumps(params)],
        check=True, capture_output=True, text=True, env=env)
    return json.loads(out.stdout)


def _scale_run(n_requests: int, telemetry: str, stream: bool,
               decode_len=SCALE_DECODE,
               measure_memory: bool = False) -> dict:
    """One end-to-end sweep: trace generation + engine run, timed as a
    whole (the baseline pays list materialization, the streamed path
    pays lazy generation — each its own real cost)."""
    backend = CycleModelBackend(TINY_MODEL, QUANT, n_slots=16)
    engine = ContinuousBatchScheduler(backend, max_batch=16)
    if measure_memory:
        tracemalloc.start()
    start = time.perf_counter()
    requests = iter_synthetic_trace(TINY_MODEL, n_requests,
                                    decode_len=decode_len,
                                    **SCALE_TRACE) if stream \
        else synthetic_trace(TINY_MODEL, n_requests,
                             decode_len=decode_len, **SCALE_TRACE)
    report = engine.run(requests, max_steps=1_000_000_000,
                        telemetry=telemetry)
    wall_s = time.perf_counter() - start
    row = {"n_requests": n_requests, "telemetry": telemetry,
           "streamed": stream, "wall_s": round(wall_s, 2),
           "n_steps": report.n_steps,
           "total_new_tokens": report.total_new_tokens,
           "p99_token_lat_ms": round(
               report.latency_percentile_s(99) * 1e3, 4)}
    if measure_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        row["peak_heap_mb"] = round(peak / 1e6, 1)
    return row


def bench_sweep_scale(save_result):
    """Streaming million-request sweeps vs the PR 4-shaped path.

    The baseline is the pre-PR 5 serving pipeline's *representation*:
    materialized trace, up-front submission, ``telemetry="full"``
    per-step recording (that path is still the differential oracle).
    The optimized path streams the trace incrementally and records
    run-length windows — O(scheduler state changes) instead of O(total
    decoded tokens) — with every expanded observable pinned
    bit-identical by tests/test_telemetry_equivalence.py.

    Note on the trajectory rebase: PR 6 replaced the materialized
    path's O(waiting) idle-jump arrival scan with an O(1) sorted-head
    read, which sped the *baseline itself* ~4-6x at scale (the PR 5
    record's 100k baseline was dominated by that quadratic scan).
    Both sides now share the fix, so from PR 6 on this pair isolates
    the telemetry + streaming gains and the recorded speedups rebase
    accordingly; earlier records are not comparable.
    """
    smoke = SWEEP_SCALE_MODE == "smoke"
    pair_points = (10_000, 30_000) if smoke else (10_000, 100_000)
    stream_point = 150_000 if smoke else 1_000_000

    pairs = []
    for n in pair_points:
        # Best of two on BOTH sides of the big pair: min-of-repeats
        # strips scheduler noise symmetrically (smoke keeps single
        # shots for the CI budget).
        repeats = 1 if smoke or n != pair_points[-1] else 2
        baseline = min((_scale_run(n, "full", stream=False)
                        for _ in range(repeats)),
                       key=lambda r: r["wall_s"])
        windows = min((_scale_run(n, "windows", stream=True)
                       for _ in range(repeats)),
                      key=lambda r: r["wall_s"])
        assert baseline["n_steps"] == windows["n_steps"]
        assert baseline["total_new_tokens"] == windows["total_new_tokens"]
        assert baseline["p99_token_lat_ms"] == windows["p99_token_lat_ms"]
        pairs.append({
            "n_requests": n,
            "baseline_wall_s": baseline["wall_s"],
            "windows_wall_s": windows["wall_s"],
            "speedup": round(baseline["wall_s"] / windows["wall_s"], 1),
            "n_steps": windows["n_steps"],
            "total_new_tokens": windows["total_new_tokens"],
        })

    # Memory: same request count, decoded tokens nearly doubled — the
    # windowed telemetry's footprint must not follow the tokens.
    mem_n = 10_000 if smoke else 20_000
    memory = {}
    for telemetry, stream in (("full", False), ("windows", True)):
        rows = [_scale_run(mem_n, telemetry, stream, decode_len=dec,
                           measure_memory=True)
                for dec in ((8, 48), (32, 192))]
        memory[telemetry] = [
            {"n_requests": mem_n, "decode_len": list(dec),
             "total_new_tokens": r["total_new_tokens"],
             "peak_heap_mb": r["peak_heap_mb"]}
            for dec, r in zip(((8, 48), (32, 192)), rows)]

    # The headline streamed point runs in a FRESH subprocess: in-process
    # RSS would carry the eager baselines' retained heap (glibc keeps
    # freed arenas resident), and tracemalloc would inflate wall ~6x.
    # A child process gives the run its own wall clock and its own RSS
    # high-water.
    streamed = _scale_run_subprocess(stream_point, "summary")
    heap_point = 40_000 if smoke else 100_000
    streamed_heap = _scale_run(heap_point, "summary", stream=True,
                               measure_memory=True)

    section = {
        "model": TINY_MODEL.name,
        "mode": SWEEP_SCALE_MODE,
        "baseline": "PR 4 path: materialized trace + telemetry='full' "
                    "fast-forward (still the differential oracle)",
        "pairs": pairs,
        "memory": memory,
        "streamed": streamed,
        "streamed_heap": streamed_heap,
    }
    RECORD["sections"]["sweep_scale"] = section

    # CI floors — wall-clock, speedup, and memory.  Floors sit well
    # under the recorded values to absorb shared-runner noise; the
    # committed record (mode=full) is the trajectory of record.
    big = pairs[-1]
    if smoke:
        # Rebased floors (see the docstring): the baseline shares the
        # PR 6 O(1) idle jump, so the pair measures telemetry +
        # streaming only (recorded ~1.4x at 30k).
        assert big["speedup"] >= 1.15, big
        assert big["windows_wall_s"] < 30.0, big
        assert streamed["wall_s"] < 90.0, streamed
        assert streamed_heap["peak_heap_mb"] < 150.0, streamed_heap
    else:
        assert big["n_requests"] >= 100_000
        assert big["speedup"] >= 1.2, big
        assert big["windows_wall_s"] < 60.0, big
        assert streamed["n_requests"] == 1_000_000
        assert streamed["wall_s"] < 500.0, streamed
        # Whole fresh process, including the end-of-run percentile
        # query's transient sort over ~18M latency runs.
        assert streamed["peak_rss_mb"] < 1200.0, streamed
        assert streamed_heap["peak_heap_mb"] < 250.0, streamed_heap
    # Sub-linear memory in decoded tokens: near-doubling the tokens at
    # fixed request count must not grow the windowed footprint by more
    # than a sliver, while the eager footprint tracks the per-token
    # lists it materializes.
    win_lo, win_hi = memory["windows"]
    token_ratio = win_hi["total_new_tokens"] / win_lo["total_new_tokens"]
    assert token_ratio > 1.5
    assert win_hi["peak_heap_mb"] <= win_lo["peak_heap_mb"] * 1.25, memory
    full_lo = memory["full"][0]
    assert win_lo["peak_heap_mb"] < full_lo["peak_heap_mb"] / 2, memory
    save_result("simperf_sweep_scale", json.dumps(section, indent=2))


def bench_windows_scale(save_result):
    """PR 8 columnar telemetry at the million-request scale.

    Three fresh-subprocess runs of the same streamed sweep, one per
    streaming telemetry level:

    * ``summary`` — the PR 5 yardstick (exact run-length percentiles,
      no step records); its peak RSS is the memory baseline.
    * ``windows`` — the columnar step store.  The acceptance bar is
      peak RSS within 1.5x of the summary run, while keeping every
      window (bit-identical expansion is pinned by
      tests/test_telemetry_equivalence.py; this bench re-checks the
      cheap observables across the levels).
    * ``sketch`` — the t-digest level: the run-length latency sample is
      dropped entirely, so percentiles are approximate (within the
      digest's documented rank-error bound) and memory must not exceed
      the summary run's.
    """
    smoke = SWEEP_SCALE_MODE == "smoke"
    n = 150_000 if smoke else 1_000_000
    summary = _scale_run_subprocess(n, "summary")
    windows = _scale_run_subprocess(n, "windows")
    sketch = _scale_run_subprocess(n, "sketch")

    # One simulated outcome across the levels: exact aggregates agree
    # everywhere, the exact-percentile levels agree on p99, and the
    # sketch lands near it (the rank-error bound; 10% value slack is
    # orders of magnitude above what the digest actually needs).
    for row in (windows, sketch):
        assert row["n_steps"] == summary["n_steps"], (row, summary)
        assert row["total_new_tokens"] == summary["total_new_tokens"]
    assert windows["p99_token_lat_ms"] == summary["p99_token_lat_ms"]
    assert abs(sketch["p99_token_lat_ms"] - summary["p99_token_lat_ms"]) \
        <= 0.1 * summary["p99_token_lat_ms"], (sketch, summary)

    rss_ratio = round(windows["peak_rss_mb"] / summary["peak_rss_mb"], 3)
    section = {
        "model": TINY_MODEL.name,
        "mode": SWEEP_SCALE_MODE,
        "summary": summary,
        "windows": windows,
        "sketch": sketch,
        "windows_rss_ratio": rss_ratio,
    }
    RECORD["sections"]["windows_scale"] = section

    # CI floors.  The RSS ratio is the PR 8 acceptance bar; wall floors
    # sit well over the recorded values for shared-runner noise.
    assert rss_ratio <= 1.5, section
    assert sketch["peak_rss_mb"] <= summary["peak_rss_mb"] * 1.1, section
    assert sketch["n_centroids"] <= 1100, section
    if smoke:
        assert windows["wall_s"] < 120.0, section
    else:
        assert windows["wall_s"] < 600.0, section
    save_result("simperf_windows_scale", json.dumps(section, indent=2))


LONG_DECODE_BURST = 16


def _long_decode_trace(n_requests: int) -> list:
    """Retirement-dominated serving: bursts of 16 long decodes arriving
    together, fully drained before the next burst lands.  Fourteen
    lanes run 48 new tokens, two run 56, so every burst retires at two
    predicted LENGTH horizons and crosses six block frontiers per
    sequence — exactly the events the single-segment tier must break a
    window at and the event-horizon tier folds."""
    rng = np.random.default_rng(11)
    prompts = rng.integers(1, TINY_MODEL.vocab_size - 1,
                           size=(n_requests, 3))
    return [Request(i, tuple(int(t) for t in prompts[i]),
                    max_new_tokens=56 if i % LONG_DECODE_BURST >= 14
                    else 48,
                    arrival_s=(i // LONG_DECODE_BURST) * 10.0)
            for i in range(n_requests)]


def _long_decode_run(trace, tier: str) -> tuple[dict, object]:
    backend = CycleModelBackend(TINY_MODEL, QUANT,
                                n_slots=LONG_DECODE_BURST,
                                kv_mode="paged", block_size=8,
                                n_kv_blocks=LONG_DECODE_BURST * 8)
    engine = ContinuousBatchScheduler(backend,
                                      max_batch=LONG_DECODE_BURST,
                                      fast_forward=tier)
    start = time.perf_counter()
    report = engine.run(trace, max_steps=1_000_000_000,
                        telemetry="summary")
    wall_s = time.perf_counter() - start
    return {"wall_s": round(wall_s, 2), "n_steps": report.n_steps,
            "window_stats": report.window_stats}, report


def bench_long_decode(save_result):
    """PR 6 event-horizon tier vs the PR 5 single-segment tier on a
    long-decode paged-KV sweep (100k requests; smoke scales down)."""
    smoke = SWEEP_SCALE_MODE == "smoke"
    n = 8_000 if smoke else 100_000
    trace = _long_decode_trace(n)

    single, single_report = _long_decode_run(trace, "single")
    multi, multi_report = _long_decode_run(trace, "multi")

    # Bit-identical observables — the tiers differ only in wall clock.
    assert single_report.n_steps == multi_report.n_steps
    assert single_report.total_time_s == multi_report.total_time_s
    assert single_report.total_new_tokens \
        == multi_report.total_new_tokens
    for p in (50.0, 99.0):
        assert single_report.latency_percentile_s(p) \
            == multi_report.latency_percentile_s(p)
        assert single_report.ttft_percentile_s(p) \
            == multi_report.ttft_percentile_s(p)

    section = {
        "model": TINY_MODEL.name,
        "mode": SWEEP_SCALE_MODE,
        "kv_mode": "paged",
        "n_requests": n,
        "n_steps": multi["n_steps"],
        "single_wall_s": single["wall_s"],
        "multi_wall_s": multi["wall_s"],
        "speedup": round(single["wall_s"] / multi["wall_s"], 2),
        "single_windows": single["window_stats"]["n_windows"],
        "multi_windows": multi["window_stats"]["n_windows"],
        "multi_segments": multi["window_stats"]["n_segments"],
        "folded_retirements":
            multi["window_stats"]["folded_retirements"],
        "single_breaks": {k: v for k, v
                          in single["window_stats"]["breaks"].items()
                          if v},
        "multi_breaks": {k: v for k, v
                         in multi["window_stats"]["breaks"].items()
                         if v},
    }
    RECORD["sections"]["long_decode"] = section

    # CI floors.  The single tier breaks at every block frontier and
    # retirement horizon (O(requests) windows); the multi tier folds
    # both, leaving one window per burst admission.
    stats_s = single["window_stats"]
    stats_m = multi["window_stats"]
    assert stats_m["n_windows"] * 4 <= stats_s["n_windows"], section
    assert stats_m["folded_retirements"] == n, section
    assert stats_s["folded_retirements"] == 0, section
    assert stats_s["breaks"]["block-frontier"] > 0, section
    assert stats_s["breaks"]["retirement-unpredicted"] > 0, section
    assert stats_m["breaks"]["block-frontier"] == 0, section
    assert stats_m["breaks"]["retirement-unpredicted"] == 0, section
    if smoke:
        assert section["speedup"] >= 2.0, section
    else:
        # Acceptance: >= 3x over the PR 5 path at 100k requests
        # (recorded ~3.6x; the floor leaves shared-runner margin).
        assert section["speedup"] >= 3.0, section
    save_result("simperf_long_decode", json.dumps(section, indent=2))


def bench_write_record(save_result):
    """Persist the machine-readable trajectory (runs last in this file)."""
    sections = RECORD["sections"]
    assert set(sections) == {"functional_decode", "functional_prefill",
                             "timing_sweeps", "sweep_scale",
                             "windows_scale", "long_decode"}, sections
    RECORD["note"] = (
        "wall-clock of the simulator itself; every optimized/baseline "
        "pair computes bit-identical results (see "
        "tests/test_batched_kernels.py and "
        "tests/test_backend_equivalence.py)")
    RECORD_PATH.write_text(json.dumps(RECORD, indent=2) + "\n")

    lines = ["Simulator performance (simperf) — optimized vs in-tree "
             "pre-optimization baselines",
             f"functional model: {SMALL_MODEL.name}, timing sweeps: "
             f"{TINY_MODEL.name} x {SWEEP_REQUESTS} requests", ""]
    for row in sections["functional_decode"]["rows"]:
        lines.append(
            f"  decode  batch {row['batch']:2d} @ctx {row['context']}: "
            f"{row['baseline_ms_per_step']:9.1f} -> "
            f"{row['optimized_ms_per_step']:7.1f} ms/step "
            f"({row['speedup']:.1f}x)")
    pf = sections["functional_prefill"]
    lines.append(f"  prefill {pf['prompt_len']} tokens:      "
                 f"{pf['baseline_ms']:9.1f} -> {pf['optimized_ms']:7.1f} "
                 f"ms      ({pf['speedup']:.1f}x)")
    for name, row in sections["timing_sweeps"]["rows"].items():
        lines.append(
            f"  {name:10s} sweep ({row['n_requests']} req, "
            f"{row['n_steps']} steps): {row['baseline_wall_s']:7.2f} -> "
            f"{row['optimized_wall_s']:6.2f} s   ({row['speedup']:.1f}x)")
    scale = sections["sweep_scale"]
    lines.append(f"  sweep-scale mode: {scale['mode']} (baseline = "
                 "PR 4 fast-forward path)")
    for row in scale["pairs"]:
        lines.append(
            f"  {row['n_requests']:>9,d}-request sweep: "
            f"{row['baseline_wall_s']:7.2f} -> {row['windows_wall_s']:6.2f} s"
            f"   ({row['speedup']:.1f}x, telemetry=windows streamed)")
    st = scale["streamed"]
    lines.append(
        f"  {st['n_requests']:>9,d}-request streamed summary sweep: "
        f"{st['wall_s']:7.2f} s, peak RSS {st['peak_rss_mb']:.0f} MB "
        f"({st['total_new_tokens']:,} tokens)")
    for tel in ("full", "windows"):
        lo, hi = scale["memory"][tel]
        lines.append(
            f"  telemetry={tel:7s} peak heap at {lo['n_requests']:,} req: "
            f"{lo['peak_heap_mb']:6.1f} MB @ {lo['total_new_tokens']:,} tok"
            f" -> {hi['peak_heap_mb']:6.1f} MB @ "
            f"{hi['total_new_tokens']:,} tok")
    ws = sections["windows_scale"]
    for level in ("summary", "windows", "sketch"):
        row = ws[level]
        extra = ""
        if level == "windows":
            extra = (f", {row['n_windows']:,} windows in "
                     f"{row['records_mb']:.0f} MB columns")
        elif level == "sketch":
            extra = f", {row['n_centroids']} centroids"
        lines.append(
            f"  {row['n_requests']:>9,d}-request streamed "
            f"telemetry={level:7s}: {row['wall_s']:7.2f} s, peak RSS "
            f"{row['peak_rss_mb']:.0f} MB{extra}")
    lines.append(f"  windows/summary peak-RSS ratio: "
                 f"{ws['windows_rss_ratio']:.2f} (bar 1.50)")
    ld = sections["long_decode"]
    lines.append(
        f"  long-decode {ld['n_requests']:,}-request paged sweep: "
        f"single {ld['single_wall_s']:.2f} s / {ld['single_windows']:,} "
        f"windows -> multi {ld['multi_wall_s']:.2f} s / "
        f"{ld['multi_windows']:,} windows ({ld['speedup']:.1f}x, "
        f"{ld['folded_retirements']:,} folded retirements)")
    save_result("simperf", "\n".join(lines))

    # Mirror the headline numbers into the diffable run store, so
    # ``repro obs diff`` can compare benchmark runs across commits.
    from repro.obs import RunStore

    scale = sections["sweep_scale"]
    metrics = {
        "timing.cycle_speedup":
            sections["timing_sweeps"]["rows"]["cycle"]["speedup"],
        "sweep_scale.big_speedup": scale["pairs"][-1]["speedup"],
        "sweep_scale.streamed_wall_s": scale["streamed"]["wall_s"],
        "sweep_scale.streamed_peak_rss_mb":
            scale["streamed"]["peak_rss_mb"],
        "windows_scale.windows_wall_s": ws["windows"]["wall_s"],
        "windows_scale.windows_peak_rss_mb":
            ws["windows"]["peak_rss_mb"],
        "windows_scale.rss_ratio_vs_summary": ws["windows_rss_ratio"],
        "windows_scale.sketch_peak_rss_mb": ws["sketch"]["peak_rss_mb"],
        "long_decode.speedup": ld["speedup"],
    }
    store = RunStore(REPO_ROOT / "benchmarks" / "runs")
    record = store.record(
        "simperf", {"bench": "simperf", "mode": SWEEP_SCALE_MODE},
        metrics)
    store.save(record)


if __name__ == "__main__":
    def _print_result(name, text):
        print(f"[{name}]\n{text}\n")

    bench_functional_decode(_print_result)
    bench_functional_prefill(_print_result)
    bench_timing_backend_sweeps(_print_result)
    bench_sweep_scale(_print_result)
    bench_windows_scale(_print_result)
    bench_long_decode(_print_result)
    bench_write_record(_print_result)
