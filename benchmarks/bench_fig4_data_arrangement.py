"""Fig. 4 — bus-width-aligned data arrangement formats.

A) interleaved zero/scale/weight streams vs the naive split layout, timed
   on the DDR model;
B) the KV scale-zero FIFO's whole-beat writes vs per-pack 4-byte writes;
plus the underlying DDR burst-size efficiency curve that motivates both.
"""

import pytest

from repro.report.figures import ddr_burst_curve, fig4_arrangement_comparison


def _render(fig: dict, curve: dict) -> str:
    lines = [
        "Fig. 4A — weight fetch efficiency (4096x4096 layer)",
        f"  interleaved format : {fig['interleaved_efficiency']:6.1%} of peak",
        f"  naive split fetch  : {fig['naive_efficiency']:6.1%} of peak",
        f"  gain               : {fig['efficiency_gain']:6.1f}x",
        "",
        "Fig. 4B — KV scale-zero packing (64 tokens, 32 layers x 32 heads)",
        f"  per-pack writes    : {fig['naive_pack_writes']}",
        f"  FIFO word writes   : {fig['fifo_writes']}",
        f"  write reduction    : {fig['write_reduction']:.1f}x",
        f"  on-chip buffer     : {fig['fifo_buffer_bytes'] // 1024} KiB",
        "",
        "DDR efficiency vs burst size (scattered):",
    ]
    for size, eff in curve["scattered"].items():
        lines.append(f"  {size:>8} B : {eff:6.1%}")
    return "\n".join(lines)


def bench_fig4(benchmark, save_result):
    fig = benchmark(fig4_arrangement_comparison, 4096, 4096)
    curve = ddr_burst_curve(burst_sizes=(64, 512, 4096, 32768, 262144))
    save_result("fig4_data_arrangement", _render(fig, curve))

    assert fig["interleaved_efficiency"] > 0.9
    assert fig["naive_efficiency"] < 0.5
    assert fig["efficiency_gain"] > 2
    assert fig["write_reduction"] == pytest.approx(16.0, rel=0.05)

    scattered = list(curve["scattered"].values())
    assert all(a <= b for a, b in zip(scattered, scattered[1:]))


def bench_fig4_burst_curve(benchmark):
    curve = benchmark(ddr_burst_curve, (64, 1024, 16384, 262144))
    assert max(curve["sequential"].values()) > 0.93
