"""Design-space exploration: the paper's configuration is the PPA point.

Sweeps lanes x AXI ports x PL frequency, evaluates each for speed,
resources, and power, and asserts that the shipped configuration
(128 lanes, 4 ports, 300 MHz) sits on the Pareto frontier while
saturating the memory system — plus the prefill-engine trade of
Sec. VI-B (a weight-reuse matrix engine would not fit the DSP budget).
"""

import pytest

from repro.config import LLAMA2_7B, W4A16_KV8
from repro.core.explore import (
    paper_design_point,
    pareto_frontier,
    sweep_design_space,
)
from repro.core.prefill import compare_prefill_engines, dsp_budget_exceeded


def _render(points, frontier) -> str:
    marks = {(p.lanes, p.axi_ports, p.freq_mhz) for p in frontier}
    lines = ["lanes ports  MHz   token/s    W    LUT%  fits  pareto"]
    for p in points:
        star = "*" if (p.lanes, p.axi_ports, p.freq_mhz) in marks else ""
        lines.append(f"{p.lanes:5d} {p.axi_ports:5d} {p.freq_mhz:5.0f}"
                     f" {p.tokens_per_s:8.3f} {p.power_w:5.2f}"
                     f" {p.lut_util:6.1%} {str(p.fits):5} {star}")
    return "\n".join(lines)


def bench_design_space(benchmark, save_result):
    points = benchmark.pedantic(
        sweep_design_space, args=(LLAMA2_7B, W4A16_KV8),
        kwargs={"context": 256}, iterations=1, rounds=1)
    frontier = pareto_frontier(points)
    save_result("design_space", _render(points, frontier))

    paper = paper_design_point(LLAMA2_7B, W4A16_KV8, context=256)
    assert paper.fits
    # The paper's point is on the frontier and is the fastest feasible one.
    keys = {(p.lanes, p.axi_ports, p.freq_mhz) for p in frontier}
    assert (128, 4, 300.0) in keys
    fastest = max(frontier, key=lambda p: p.tokens_per_s)
    assert fastest.tokens_per_s == pytest.approx(paper.tokens_per_s,
                                                 rel=0.01)


def bench_prefill_engine_trade(benchmark, save_result):
    reports = benchmark.pedantic(
        compare_prefill_engines, args=(LLAMA2_7B, W4A16_KV8),
        kwargs={"prompt_len": 64, "batch": 8}, iterations=1, rounds=1)
    dot, batch = reports["dot"], reports["batch"]
    save_result(
        "prefill_engine_trade",
        f"{dot.engine}: TTFT {dot.ttft_s:.1f} s, decode "
        f"{dot.decode_tokens_per_s:.2f} token/s, +0 DSP\n"
        f"{batch.engine}: TTFT {batch.ttft_s:.1f} s, decode "
        f"{batch.decode_tokens_per_s:.2f} token/s, "
        f"+{batch.extra_dsp:.0f} DSP (device has 1248; paper's VPU uses 266)")

    # The trade: batching slashes TTFT but cannot move decode speed, and
    # its multiplier array does not fit the XCK26.
    assert batch.ttft_s < dot.ttft_s / 4
    assert batch.decode_tokens_per_s == pytest.approx(
        dot.decode_tokens_per_s)
    assert dsp_budget_exceeded(8)
