"""Future-platform projection — the Discussion section, quantified.

Sec. VIII: "further improving LLM decoding speed and supporting larger
LLM size remains challenging without sufficient bandwidth and capacity.
With DDR5 and unified memory ... it is timely for FPGA vendors to
integrate advanced memory support."

This benchmark runs the same accelerator model on the embedded boards of
the paper's introduction (Ultra96v2, ZCU104, KV260) plus a hypothetical
DDR5 KV260, reporting for each: does LLaMA2-7B fit, and how fast does it
decode — showing capacity gates deployment before bandwidth ever matters.
"""

import pytest

from repro.config import (
    KV260,
    KV260_DDR5,
    LLAMA2_7B,
    TINYLLAMA_1_1B,
    ULTRA96_V2,
    W4A16_KV8,
    ZCU104,
)
from repro.core.cyclemodel import CycleModel
from repro.runtime.baremetal import BareMetalSystem

BOARDS = (ULTRA96_V2, ZCU104, KV260, KV260_DDR5)


def _evaluate():
    rows = []
    for board in BOARDS:
        system = BareMetalSystem(board)
        fits_7b = system.fits(LLAMA2_7B, W4A16_KV8, context=1024)
        fits_tiny = system.fits(TINYLLAMA_1_1B, W4A16_KV8, context=1024)
        rate = None
        if fits_7b:
            # The DOT engine must scale with the stream: 128 lanes consume
            # exactly 19.2 GB/s of 4-bit weights, so a wider memory needs
            # proportionally more lanes (or decode goes compute-bound).
            from repro.core.vpu import VpuSpec

            lanes = 128 * max(1, board.axi_ports // 4)
            cm = CycleModel(LLAMA2_7B, W4A16_KV8, board,
                            vpu=VpuSpec(lanes=lanes))
            rate = cm.decode_step(512).tokens_per_s
        rows.append({
            "board": board.name,
            "gbps": board.bandwidth_gbps,
            "dram_gib": board.dram_bytes / 2**30,
            "fits_7b": fits_7b,
            "fits_1_1b": fits_tiny,
            "tokens_per_s": rate,
        })
    return rows


def _render(rows) -> str:
    lines = [f"{'board':<28}{'GB/s':>6}{'DRAM':>6}{'7B?':>6}"
             f"{'1.1B?':>7}{'token/s':>9}"]
    for r in rows:
        rate = f"{r['tokens_per_s']:.2f}" if r["tokens_per_s"] else "-"
        lines.append(f"{r['board']:<28}{r['gbps']:>6}{r['dram_gib']:>5.0f}G"
                     f"{str(r['fits_7b']):>6}{str(r['fits_1_1b']):>7}"
                     f"{rate:>9}")
    return "\n".join(lines)


def bench_future_platforms(benchmark, save_result):
    rows = benchmark(_evaluate)
    save_result("future_platforms", _render(rows))

    by_name = {r["board"]: r for r in rows}
    # Capacity gates first: 2 GB boards cannot host 7B at all, whatever
    # their bandwidth (ZCU104 has the KV260's full 19.2 GB/s).
    assert not by_name["Ultra96v2"]["fits_7b"]
    assert not by_name["ZCU104"]["fits_7b"]
    assert by_name["ZCU104"]["fits_1_1b"]
    # The paper's board is the smallest that fits.
    assert by_name["KV260"]["fits_7b"]
    # DDR5 projection: double bandwidth -> ~2x decode rate.
    kv260 = by_name["KV260"]["tokens_per_s"]
    ddr5 = by_name["KV260-DDR5 (hypothetical)"]["tokens_per_s"]
    assert ddr5 == pytest.approx(2 * kv260, rel=0.05)
