"""Fig. 1 — memory capacity breakdown of the 4 GB DDR4.

Regenerates the weights (3556 MB) / KV cache (264 MB) / 93.3% utilization
breakdown and the bare-metal-vs-Linux feasibility contrast.
"""

import pytest

from repro.config import KV260, LLAMA2_7B, W4A16_KV8
from repro.report.figures import fig1_memory_breakdown
from repro.runtime.baremetal import BareMetalSystem


def _render(fig: dict) -> str:
    lines = [
        "Fig. 1 — LLaMA2-7B AWQ-4bit on KV260 (4096 MB DDR4)",
        f"  model weights : {fig['weights_mib']:8.1f} MB  (paper: "
        f"{fig['paper_weights_mib']:.0f} MB)",
        f"  KV cache(1024): {fig['kv_mib']:8.1f} MB  (paper: "
        f"{fig['paper_kv_mib']:.0f} MB)",
        f"  free          : {fig['free_mib']:8.1f} MB",
        f"  utilization   : {fig['utilization']:8.1%}  (paper: "
        f"{fig['paper_utilization']:.1%})",
    ]
    return "\n".join(lines)


def bench_fig1(benchmark, save_result):
    fig = benchmark(fig1_memory_breakdown, LLAMA2_7B, W4A16_KV8, 1024)
    save_result("fig1_memory_breakdown", _render(fig))

    assert fig["weights_mib"] == pytest.approx(fig["paper_weights_mib"],
                                               rel=0.01)
    assert fig["kv_mib"] == pytest.approx(fig["paper_kv_mib"], rel=0.002)
    assert fig["utilization"] == pytest.approx(fig["paper_utilization"],
                                               abs=0.005)


def bench_fig1_bare_metal_requirement(benchmark):
    system = BareMetalSystem(KV260)
    fits = benchmark(system.fits, LLAMA2_7B, W4A16_KV8, 1024)
    assert fits
    assert not system.linux_would_fit(LLAMA2_7B, W4A16_KV8, 1024)
