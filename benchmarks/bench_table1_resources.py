"""Table I — resource consumption breakdown of the accelerator.

Regenerates the LUT/FF/CARRY/DSP/URAM/BRAM breakdown (MemCtrl / VPU / SPU)
and the 6.57 W power figure, and checks every cell against the paper.
"""

import pytest

from repro.core.power import estimate_power
from repro.core.resources import PAPER_TABLE_I, estimate_resources
from repro.report.tables import table1_resources


def bench_table1(benchmark, save_result):
    rows, text = benchmark(table1_resources)
    save_result("table1_resources", text)

    by_name = {r["component"]: r for r in rows}
    for name, paper in PAPER_TABLE_I.items():
        got = by_name[name]
        assert got["lut"] == pytest.approx(paper["lut"], rel=0.05), name
        assert got["ff"] == pytest.approx(paper["ff"], rel=0.05), name
        assert got["dsp"] == pytest.approx(paper["dsp"], abs=1), name
        assert got["bram"] == pytest.approx(paper["bram"], abs=1), name
        assert got["uram"] == paper["uram"], name


def bench_table1_power(benchmark):
    report = estimate_resources()
    watts = benchmark(estimate_power, report, 300e6)
    assert watts == pytest.approx(6.57, abs=0.1)
