"""Quantization quality (Sec. IV's algorithmic choices, quantified).

Not a numbered figure in the paper, but the basis of its W4A16 + KV8
choice: AWQ-style weight quantization loses little quality, and KV8
degrades the model far less than KV4.  Evaluated on a synthetic model
with the float64 reference as ground truth (no LLaMA checkpoint offline;
the *ordering* is the reproducible claim).
"""

import pytest

from repro.config import QuantConfig, TINY_MODEL
from repro.evalkit.harness import (
    compare_quant_configs,
    synthetic_corpus,
)
from repro.model.weights import random_weights

CONFIGS = {
    "W4/KV8": QuantConfig(weight_bits=4, kv_bits=8, weight_group_size=32),
    "W4/KV4": QuantConfig(weight_bits=4, kv_bits=4, weight_group_size=32),
    "W8/KV8": QuantConfig(weight_bits=8, kv_bits=8, weight_group_size=32),
}


def _render(results) -> str:
    lines = ["Quantization quality vs float64 reference (synthetic model)",
             f"{'config':<10}{'ppl delta':>11}{'mean KL':>10}{'top5 agree':>12}"]
    for label, r in results.items():
        lines.append(f"{label:<10}{r.perplexity_delta:>10.2%}"
                     f"{r.mean_kl:>10.4f}{r.top5_agreement:>11.1%}")
    return "\n".join(lines)


def bench_quant_quality(benchmark, save_result):
    weights = random_weights(TINY_MODEL, seed=11)
    corpus = synthetic_corpus(TINY_MODEL.vocab_size, n_sequences=2,
                              length=8, seed=3)

    results = benchmark.pedantic(
        compare_quant_configs, args=(weights, CONFIGS, corpus),
        iterations=1, rounds=1)
    save_result("quant_quality", _render(results))

    # Sec. IV-B: KV8 preserves the model better than KV4.
    assert results["W4/KV4"].mean_kl > results["W4/KV8"].mean_kl
    # More weight bits -> closer to reference.
    assert results["W8/KV8"].mean_kl < results["W4/KV8"].mean_kl
    # The deployed W4/KV8 point stays usable: high rank agreement, small
    # perplexity movement.
    assert results["W4/KV8"].top5_agreement > 0.6
    assert abs(results["W4/KV8"].perplexity_delta) < 0.10
