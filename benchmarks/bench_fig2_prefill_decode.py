"""Fig. 2 — the two inference phases: prefill (GEMM/TTFT) vs decode
(GEMV/TOPT).

Regenerates the phase-structure numbers: arithmetic intensity contrast,
time-to-first-token for the bandwidth-area-balanced engine (which
deliberately sacrifices prefill), and time-per-output-token.
"""

import pytest

from repro.report.figures import fig2_phase_breakdown


def _render(fig: dict, prompt_len: int) -> str:
    return "\n".join([
        f"Fig. 2 — phases for a {prompt_len}-token prompt (LLaMA2-7B, KV260)",
        f"  TTFT (prefill)        : {fig['ttft_s']:7.2f} s",
        f"  TOPT (decode)         : {fig['topt_s']:7.3f} s/token",
        f"  decode rate           : {fig['decode_tokens_per_s']:7.2f} token/s",
        f"  prefill ops per weight: {fig['prefill_ops_per_weight']}",
        f"  decode  ops per weight: {fig['decode_ops_per_weight']}",
    ])


def bench_fig2(benchmark, save_result):
    prompt_len = 16
    fig = benchmark(fig2_phase_breakdown, prompt_len=prompt_len,
                    new_tokens=16)
    save_result("fig2_prefill_decode", _render(fig, prompt_len))

    # Decode is GEMV (2 ops per streamed weight); prefill batches the
    # prompt (2 x prompt_len ops per weight) — the compute/bandwidth-bound
    # contrast of Fig. 2.
    assert fig["prefill_ops_per_weight"] == 2 * prompt_len
    assert fig["decode_ops_per_weight"] == 2
    # This engine restreams weights during prefill, so TTFT is roughly
    # prompt_len decode steps.
    assert fig["ttft_s"] == pytest.approx(prompt_len * fig["topt_s"],
                                          rel=0.05)
    assert fig["decode_tokens_per_s"] == pytest.approx(5.2, abs=0.2)
