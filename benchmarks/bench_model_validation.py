"""Model cross-validation artifacts.

Two independent mechanism-level models check the closed-form ones:

* the beat-accurate event simulation (`core.eventsim`, the cocotb-run
  analog) vs the analytical attention pipeline;
* the multi-bank DDR4 state machine (`memory.banks`) vs the first-order
  burst-efficiency model.

If either disagreement grows, a headline number is drifting for the wrong
reason — these benches pin the agreement as a regression gate.
"""

import pytest

from repro.config import LLAMA2_7B, W4A16_KV8
from repro.core.eventsim import BeatSimulator
from repro.core.pipeline import AttentionPipeline
from repro.memory.banks import BankedDdrModel
from repro.memory.ddr import stream_efficiency


def bench_eventsim_vs_analytical(benchmark, save_result):
    sim = BeatSimulator(LLAMA2_7B, W4A16_KV8)
    pipe = AttentionPipeline(LLAMA2_7B, W4A16_KV8)

    def run():
        rows = []
        for ctx in (0, 128, 512, 1023):
            beat = sim.attention_layer_cycles(ctx)
            analytic = pipe.fused_schedule(ctx).total_cycles
            rows.append((ctx, beat["cycles"], analytic,
                         beat["stall_cycles"]))
        return rows

    rows = benchmark(run)
    text = "ctx   event-sim cycles   analytical   delta    stalls\n" + \
        "\n".join(f"{ctx:4d}   {b:14.0f}   {a:10.0f}   {b / a - 1:+6.2%}"
                  f"   {s:.0f}" for ctx, b, a, s in rows)
    save_result("validation_eventsim", text)

    for ctx, beat, analytic, stalls in rows:
        assert beat == pytest.approx(analytic, rel=0.05), ctx
        assert stalls == pytest.approx(0.0, abs=1e-6), ctx


def bench_banked_ddr_vs_firstorder(benchmark, save_result):
    def run():
        banked = BankedDdrModel()
        ns = banked.stream(0, 1 << 23)
        return banked.efficiency(ns), stream_efficiency(1 << 23, 1 << 20)

    detailed, simple = benchmark(run)
    save_result(
        "validation_banked_ddr",
        f"streaming ceiling: banked state machine {detailed:.1%} vs "
        f"first-order model {simple:.1%}")
    assert detailed == pytest.approx(simple, abs=0.04)
    assert detailed > 0.9
