"""Design-space exploration + boot timeline for the KV260 accelerator.

Sweeps lanes / AXI ports / PL frequency, marks the Pareto frontier,
contrasts the paper's DOT engine with a weight-reuse matrix engine for
prefill (Sec. VI-B), and prints the SD-card boot timeline (Sec. VII-A).

Usage:  python examples/design_space.py
"""

from repro.config import LLAMA2_7B, W4A16_KV8
from repro.core.explore import pareto_frontier, sweep_design_space
from repro.core.prefill import compare_prefill_engines
from repro.packing.memimage import build_memory_image
from repro.runtime.loader import ModelLoader


def explore() -> None:
    print("=== design space: lanes x ports x frequency (ctx 256) ===")
    points = sweep_design_space(LLAMA2_7B, W4A16_KV8, context=256)
    frontier = {(p.lanes, p.axi_ports, p.freq_mhz)
                for p in pareto_frontier(points)}
    print("lanes ports  MHz   token/s    W     LUT%   pareto")
    for p in points:
        star = " *" if (p.lanes, p.axi_ports, p.freq_mhz) in frontier else ""
        print(f"{p.lanes:5d} {p.axi_ports:5d} {p.freq_mhz:5.0f}"
              f" {p.tokens_per_s:8.3f} {p.power_w:5.2f}"
              f"  {p.lut_util:5.1%}{star}")
    print("(the paper ships 128 lanes / 4 ports / 300 MHz — the fastest "
          "feasible point)")


def prefill_trade() -> None:
    print("\n=== prefill engines (Sec. VI-B) ===")
    reports = compare_prefill_engines(LLAMA2_7B, W4A16_KV8, prompt_len=64,
                                      batch=8)
    for r in reports.values():
        print(f"{r.engine:<28} TTFT {r.ttft_s:6.1f} s   decode "
              f"{r.decode_tokens_per_s:.2f} token/s   +{r.extra_dsp:.0f} DSP")
    print("batching fixes TTFT but cannot move the bandwidth-bound decode "
          "rate, and its DSPs do not fit the XCK26 — the paper's argument.")


def boot() -> None:
    print("\n=== boot timeline (Sec. VII-A) ===")
    image = build_memory_image(LLAMA2_7B, W4A16_KV8, context=1024)
    print(ModelLoader().describe(image))


if __name__ == "__main__":
    explore()
    prefill_trade()
    boot()
