"""Bandwidth exploration: why the data arrangement format exists.

Walks through the paper's Sec. V-B argument with the DDR model:

1. DDR4 efficiency collapses for short scattered bursts;
2. the naive split weight layout pays that penalty on every group's
   scale/zero fetch, the interleaved format does not;
3. the KV scale-zero FIFO turns 4-byte pack writes into full bus words;
4. the end result: decode utilization within a few points of the
   streaming ceiling.

Usage:  python examples/bandwidth_exploration.py
"""

from repro import KV260, LLAMA2_7B, W4A16_KV8
from repro.core.cyclemodel import CycleModel
from repro.core.mcu import Mcu
from repro.report.figures import ddr_burst_curve, fig4_arrangement_comparison


def burst_curve() -> None:
    print("=== 1. DDR4 efficiency vs burst size ===")
    curve = ddr_burst_curve(burst_sizes=(4, 64, 512, 4096, 65536, 1048576))
    print(f"{'burst':>10}  {'scattered':>10}  {'sequential':>10}")
    for size in curve["scattered"]:
        print(f"{size:>8} B  {curve['scattered'][size]:>10.1%}"
              f"  {curve['sequential'][size]:>10.1%}")


def layout_comparison() -> None:
    print("\n=== 2 & 3. the Fig. 4 formats on a 4096x4096 layer ===")
    fig = fig4_arrangement_comparison(4096, 4096)
    print(f"interleaved weight stream : {fig['interleaved_efficiency']:.1%} "
          "of peak bandwidth")
    print(f"naive split fetch         : {fig['naive_efficiency']:.1%}")
    print(f"KV pack writes            : {fig['naive_pack_writes']} x 4 B  "
          f"->  {fig['fifo_writes']} x 64 B "
          f"({fig['write_reduction']:.0f}x fewer)")
    print(f"FIFO on-chip buffer       : {fig['fifo_buffer_bytes'] // 1024} "
          "KiB")


def time_breakdown() -> None:
    print("\n=== 4. where one decode step's bus time goes (ctx 512) ===")
    from repro.core.commands import CommandGenerator
    from repro.memory.profiler import profile_decode_step
    from repro.packing.memimage import build_memory_image

    image = build_memory_image(LLAMA2_7B, W4A16_KV8, context=1024)
    descriptors = CommandGenerator(image).decode_step_descriptors(16, 512)
    print(profile_decode_step(descriptors).render())


def end_result() -> None:
    print("\n=== 5. where the 84.5% lands ===")
    mcu = Mcu()
    print(f"streaming ceiling (DDR efficiency): "
          f"{mcu.streaming_efficiency():.1%}")
    cm = CycleModel(LLAMA2_7B, W4A16_KV8, KV260)
    for ctx in (0, 512, 1023):
        step = cm.decode_step(ctx)
        print(f"context {ctx:4d}: {step.tokens_per_s:.2f} token/s, "
              f"{step.utilization:.1%} of the weights-only ceiling "
              f"({step.transfer_bytes / 1e9:.2f} GB moved per token)")


if __name__ == "__main__":
    burst_curve()
    layout_comparison()
    time_breakdown()
    end_result()
