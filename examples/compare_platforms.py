"""Reproduce the paper's comparison tables (Tables II and III).

Prints both tables with recomputed theoretical rates and utilizations,
with our row produced live by the cycle model instead of copied from the
paper.

Usage:  python examples/compare_platforms.py
"""

from repro.report.tables import table1_resources, table2_fpga, table3_edge


def main() -> None:
    _, t1 = table1_resources()
    print("=== Table I: resource consumption breakdown ===")
    print(t1)

    _, t2 = table2_fpga(context=1023)
    print("\n=== Table II: comparison with existing FPGA research ===")
    print(t2)
    print("token/s^1 = bandwidth-bound theoretical peak; "
          "token/s^2 = reported/simulated")

    _, t3 = table3_edge(context=1023)
    print("\n=== Table III: comparison with embedded CPU/GPUs ===")
    print(t3)


if __name__ == "__main__":
    main()
