"""Chat demo: drive the simulated accelerator like the bare-metal system.

A tiny synthetic model stands in for LLaMA2-7B (no checkpoint offline),
but the flow is the paper's: tokenize on the "PS", stream the quantized
model through the accelerator pipeline, sample, detokenize, and report
per-turn performance from the cycle model.

Usage:  python examples/chat_demo.py           # canned prompts
        python examples/chat_demo.py --interactive
"""

import sys

from repro import SMALL_MODEL, QuantConfig, quantize_model, random_weights
from repro.model.sampler import Sampler
from repro.runtime.session import ChatSession, InferenceSession

CANNED_PROMPTS = (
    "Hello!",
    "What is an FPGA?",
    "Tell me about memory bandwidth.",
)


def build_chat() -> ChatSession:
    print("loading model (synthetic SMALL_MODEL, W4A16 + KV8)...")
    weights = random_weights(SMALL_MODEL, seed=42)
    qweights = quantize_model(weights, QuantConfig(weight_group_size=64))
    sampler = Sampler(temperature=0.9, top_k=40, seed=0)
    session = InferenceSession(qweights, sampler=sampler,
                               check_capacity=False)
    # Multi-turn: history stays resident like the bare-metal KV cache,
    # truncating oldest turns when the context reservation would overflow.
    return ChatSession(session, reserve_for_reply=24)


def turn(chat: ChatSession, prompt: str) -> None:
    result = chat.say(prompt, max_new_tokens=24)
    print(f"you  > {prompt}")
    print(f"model> {result.completion!r}")
    print(f"       [{len(result.tokens)} tokens, "
          f"{result.perf.tokens_per_s:.0f} token/s simulated, "
          f"history {len(chat.history_tokens)} tokens]\n")


def main() -> None:
    chat = build_chat()
    if "--interactive" in sys.argv:
        print("type a prompt (empty line to quit)")
        while True:
            prompt = input("you> ").strip()
            if not prompt:
                break
            turn(chat, prompt)
    else:
        for prompt in CANNED_PROMPTS:
            turn(chat, prompt)


if __name__ == "__main__":
    main()
