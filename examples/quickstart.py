"""Quickstart: the paper's headline numbers in a dozen lines.

Runs the timing-only accelerator model for LLaMA2-7B on the KV260
(no checkpoint needed) and a complete functional generation on a tiny
synthetic model through the same simulated hardware.

Usage:  python examples/quickstart.py
"""

from repro import (
    Accelerator,
    LLAMA2_7B,
    TINY_MODEL,
    W4A16_KV8,
    QuantConfig,
    quantize_model,
    random_weights,
)
from repro.runtime.session import InferenceSession


def headline_numbers() -> None:
    print("=== LLaMA2-7B W4A16/KV8 on KV260 (timing model) ===")
    acc = Accelerator.analytical(LLAMA2_7B, W4A16_KV8)
    print(f"theoretical ceiling : "
          f"{acc.theoretical_tokens_per_s():.2f} token/s")
    for context in (128, 512, 1023):
        perf = acc.decode_perf(context)
        print(f"context {context:4d}        : {perf.tokens_per_s:.2f} "
              f"token/s  ({perf.utilization:.1%} bandwidth utilization)")
    print(f"estimated power     : {acc.power_w():.2f} W")
    report = acc.resources()
    util = report.utilization()
    print(f"resources           : {report.total.lut:.0f} LUT "
          f"({util['lut']:.0%}), {report.total.dsp:.0f} DSP "
          f"({util['dsp']:.0%})")


def capacity_bar() -> None:
    from repro.packing.memimage import build_memory_image
    from repro.report.ascii import stacked_capacity_bar

    image = build_memory_image(LLAMA2_7B, W4A16_KV8, context=1024)
    print("\n=== Fig. 1: the 4096 MB DDR4, occupied ===")
    print(stacked_capacity_bar(
        {"weights": image.weight_mib(), "KV cache": image.kv_mib()},
        4096.0))


def functional_generation() -> None:
    print("\n=== tiny synthetic model, full functional pipeline ===")
    weights = random_weights(TINY_MODEL, seed=7)
    qweights = quantize_model(weights, QuantConfig(weight_group_size=32))
    session = InferenceSession(qweights, check_capacity=False)
    result = session.generate("Hello FPGA", max_new_tokens=12)
    print(f"prompt      : {result.prompt!r}")
    print(f"completion  : {result.completion!r}")
    print(f"token ids   : {result.tokens}")
    print(f"TTFT        : {result.perf.ttft_s * 1e3:.2f} ms "
          "(simulated KV260 clock)")
    print(f"decode rate : {result.perf.tokens_per_s:.0f} token/s "
          "(tiny model, same 19.2 GB/s bus)")


if __name__ == "__main__":
    headline_numbers()
    capacity_bar()
    functional_generation()
