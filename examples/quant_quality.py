"""Quantization quality study: why W4A16 + KV8 (paper Sec. IV).

Evaluates weight/KV quantization variants against the float64 reference
on a synthetic model, including the AWQ-vs-round-to-nearest contrast with
a real calibration pass.

Usage:  python examples/quant_quality.py
"""

from repro.config import QuantConfig, TINY_MODEL
from repro.evalkit.harness import (
    collect_activation_stats,
    compare_quant_configs,
    synthetic_corpus,
)
from repro.model.weights import random_weights

CONFIGS = {
    "W4/KV8": QuantConfig(weight_bits=4, kv_bits=8, weight_group_size=32),
    "W4/KV8+awq": QuantConfig(weight_bits=4, kv_bits=8,
                              weight_group_size=32),
    "W4/KV4": QuantConfig(weight_bits=4, kv_bits=4, weight_group_size=32),
    "W8/KV8": QuantConfig(weight_bits=8, kv_bits=8, weight_group_size=32),
}


def main() -> None:
    print("building synthetic model and corpus...")
    weights = random_weights(TINY_MODEL, seed=11)
    corpus = synthetic_corpus(TINY_MODEL.vocab_size, n_sequences=2,
                              length=8, seed=3)
    calibration = synthetic_corpus(TINY_MODEL.vocab_size, n_sequences=1,
                                   length=6, seed=4)

    print("collecting AWQ calibration statistics...")
    stats = collect_activation_stats(weights, calibration)

    print("evaluating quantization variants (float64 reference = truth)\n")
    results = compare_quant_configs(weights, CONFIGS, corpus,
                                    awq_stats=stats)
    header = (f"{'config':<12}{'ref ppl':>9}{'quant ppl':>11}"
              f"{'delta':>9}{'mean KL':>10}{'top5':>7}")
    print(header)
    print("-" * len(header))
    for label, r in results.items():
        print(f"{label:<12}{r.ref_perplexity:>9.2f}"
              f"{r.quant_perplexity:>11.2f}{r.perplexity_delta:>9.2%}"
              f"{r.mean_kl:>10.4f}{r.top5_agreement:>7.0%}")

    print("\ntakeaways (the paper's Sec. IV choices):")
    print(f"  KV4 costs {results['W4/KV4'].mean_kl / results['W4/KV8'].mean_kl:.1f}x "
          "the KL of KV8  -> keep the KV cache at 8 bits")
    print("  W4 with group scaling stays within a few percent of the "
          "reference -> 4-bit weights are the capacity/bandwidth win")


if __name__ == "__main__":
    main()
