"""Capacity planning: which LLMs fit an embedded board at all?

Reproduces the paper's Fig. 1 reasoning as a planning tool: for each
(model, quantization) pair it reports the weight footprint, the maximum
KV-cache context that still fits, and whether the deployment would
survive under an embedded Linux instead of bare metal.

Usage:  python examples/capacity_planning.py
"""

from repro import (
    CHATGLM_6B,
    GPT2_1_5B,
    KV260,
    LLAMA2_7B,
    TINYLLAMA_1_1B,
    QuantConfig,
)
from repro.errors import CapacityError
from repro.runtime.baremetal import BareMetalSystem, LINUX_RESERVED_BYTES
from repro.units import MIB

MODELS = (TINYLLAMA_1_1B, GPT2_1_5B, CHATGLM_6B, LLAMA2_7B)
QUANTS = {
    "W4/KV8": QuantConfig(weight_bits=4, kv_bits=8),
    "W8/KV8": QuantConfig(weight_bits=8, kv_bits=8),
}


def plan() -> None:
    bare = BareMetalSystem(KV260)
    hosted = BareMetalSystem(KV260, LINUX_RESERVED_BYTES)
    print(f"platform: {KV260.name}, {KV260.dram_bytes // MIB} MB DDR4, "
          f"{KV260.bandwidth_gbps} GB/s\n")
    header = (f"{'model':<16}{'quant':<9}{'weights':>10}{'max ctx':>9}"
              f"{'bare-metal':>12}{'under Linux':>13}")
    print(header)
    print("-" * len(header))
    for model in MODELS:
        for qname, quant in QUANTS.items():
            report = bare.capacity_report(model, quant, context=1024)
            weights_mb = report.weight_bytes / MIB
            try:
                max_ctx = bare.max_context(model, quant)
            except CapacityError:
                max_ctx = 0
            fits = bare.fits(model, quant, 1024)
            linux = hosted.fits(model, quant, 1024)
            print(f"{model.name:<16}{qname:<9}{weights_mb:>8.0f} MB"
                  f"{max_ctx:>9}{str(fits):>12}{str(linux):>13}")
    print()
    full = bare.capacity_report(LLAMA2_7B, QUANTS["W4/KV8"], 1024)
    print(f"LLaMA2-7B W4/KV8 at context 1024 uses "
          f"{full.model_utilization:.1%} of the raw 4 GB "
          f"(paper: 93.3%) — which is why the paper runs bare-metal: "
          f"an OS stack of ~{LINUX_RESERVED_BYTES // MIB} MB cannot fit "
          f"in the {full.headroom_bytes / MIB:.0f} MB that remain.")


if __name__ == "__main__":
    plan()
