"""Shared fixtures: tiny synthetic models and their quantized forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import QuantConfig, TINY_MODEL
from repro.model.weights import quantize_model, random_weights


@pytest.fixture(scope="session")
def tiny_quant() -> QuantConfig:
    """Quant config whose group size divides the tiny model's hidden size."""
    return QuantConfig(weight_group_size=32)


@pytest.fixture(scope="session")
def tiny_weights():
    return random_weights(TINY_MODEL, seed=7)


@pytest.fixture(scope="session")
def tiny_qweights(tiny_weights, tiny_quant):
    return quantize_model(tiny_weights, tiny_quant)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
