"""Whole-reproduction summary."""

import pytest

from repro.report.summary import (
    HeadlineNumbers,
    render_summary,
    reproduction_summary,
)


@pytest.fixture(scope="module")
def summary():
    return reproduction_summary()


def test_every_headline_claim_holds(summary):
    checks = summary.matches_paper()
    failing = [name for name, ok in checks.items() if not ok]
    assert not failing, f"claims not reproduced: {failing}"


def test_all_match_aggregate(summary):
    assert summary.all_match()


def test_render_contains_all_rows(summary):
    text = render_summary(summary)
    assert text.count("\n") >= 10
    assert "token/s" in text
    assert "True" in text
    assert "False" not in text  # every claim matches


def test_summary_values_sane(summary):
    assert 5.7 < summary.theoretical_tokens_per_s < 5.9
    assert 0 < summary.decode_tokens_per_s < summary.theoretical_tokens_per_s
    assert summary.kv_mib == pytest.approx(264, abs=0.5)


def test_matches_paper_detects_regression():
    broken = HeadlineNumbers(
        theoretical_tokens_per_s=5.8, decode_tokens_per_s=3.0,
        utilization=0.52, weights_mib=3556, kv_mib=264,
        capacity_utilization=0.93, linux_fits=False,
        exposed_misc_cycles=0, lut=77000, dsp=291, power_w=6.57)
    checks = broken.matches_paper()
    assert not checks["decode ~4.9 token/s"]
    assert not broken.all_match()
