"""ASCII chart helpers."""

import pytest

from repro.errors import ReproError
from repro.report.ascii import bar_chart, series_table, stacked_capacity_bar


class TestBarChart:
    def test_renders_all_labels(self):
        art = bar_chart({"alpha": 1.0, "beta": 2.0})
        assert "alpha" in art and "beta" in art

    def test_longest_bar_is_peak(self):
        art = bar_chart({"small": 1.0, "big": 4.0}, width=20)
        lines = {l.split()[0]: l for l in art.splitlines()}
        assert lines["big"].count("█") > lines["small"].count("█")

    def test_values_printed(self):
        art = bar_chart({"x": 3.14159}, fmt="{:.1f}")
        assert "3.1" in art

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            bar_chart({})

    def test_nonpositive_peak_rejected(self):
        with pytest.raises(ReproError):
            bar_chart({"x": 0.0})


class TestSeriesTable:
    def test_header_and_rows(self):
        art = series_table("ctx", "token/s", {0: 5.3, 512: 5.1, 1023: 4.9})
        assert art.splitlines()[0].strip().startswith("ctx")
        assert len(art.splitlines()) == 4

    def test_bars_scale(self):
        art = series_table("x", "y", {1: 1.0, 2: 2.0}, width=10)
        rows = art.splitlines()[1:]
        assert rows[1].count("█") > rows[0].count("█")

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            series_table("x", "y", {})


class TestStackedBar:
    def test_fig1_style(self):
        art = stacked_capacity_bar({"weights": 3549, "kv": 264}, 4096)
        assert "weights" in art and "kv" in art and "free" in art
        assert "86.6%" in art  # weights fraction

    def test_bar_width_respected(self):
        art = stacked_capacity_bar({"a": 50}, 100, width=30)
        bar_line = art.splitlines()[0]
        assert len(bar_line) == 32  # brackets + width

    def test_overflow_rejected(self):
        with pytest.raises(ReproError):
            stacked_capacity_bar({"a": 200}, 100)

    def test_zero_total_rejected(self):
        with pytest.raises(ReproError):
            stacked_capacity_bar({"a": 1}, 0)
