"""Checkpoint container and MCU command generation."""

import io

import pytest

from repro.config import LLAMA2_7B, TINY_MODEL, W4A16_KV8
from repro.core.commands import CommandGenerator
from repro.errors import LayoutError, ScheduleError
from repro.packing.checkpoint import (
    checkpoint_matches_image,
    read_checkpoint,
    write_checkpoint,
)
from repro.packing.memimage import build_memory_image


@pytest.fixture(scope="module")
def tiny_image(tiny_qweights, tiny_quant):
    return build_memory_image(TINY_MODEL, tiny_quant, context=64,
                              qweights=tiny_qweights)


class TestCheckpoint:
    def test_roundtrip(self, tiny_image):
        buf = io.BytesIO()
        n = write_checkpoint(tiny_image, buf)
        assert n == buf.tell()
        buf.seek(0)
        parsed = read_checkpoint(buf)
        assert checkpoint_matches_image(parsed, tiny_image)

    def test_regions_in_address_order(self, tiny_image):
        buf = io.BytesIO()
        write_checkpoint(tiny_image, buf)
        buf.seek(0)
        parsed = read_checkpoint(buf)
        addrs = [meta.dst_addr for meta, _ in parsed.values()]
        assert addrs == sorted(addrs)

    def test_corruption_detected(self, tiny_image):
        buf = io.BytesIO()
        write_checkpoint(tiny_image, buf)
        raw = bytearray(buf.getvalue())
        raw[-1] ^= 0xFF  # flip a payload byte
        with pytest.raises(LayoutError):
            read_checkpoint(io.BytesIO(bytes(raw)))

    def test_corruption_ignored_without_verify(self, tiny_image):
        buf = io.BytesIO()
        write_checkpoint(tiny_image, buf)
        raw = bytearray(buf.getvalue())
        raw[-1] ^= 0xFF
        parsed = read_checkpoint(io.BytesIO(bytes(raw)), verify=False)
        assert not checkpoint_matches_image(parsed, tiny_image)

    def test_bad_magic_rejected(self):
        with pytest.raises(LayoutError):
            read_checkpoint(io.BytesIO(b"NOTACKPT" + b"\x00" * 16))

    def test_truncated_payload_rejected(self, tiny_image):
        buf = io.BytesIO()
        write_checkpoint(tiny_image, buf)
        truncated = buf.getvalue()[:-100]
        with pytest.raises(LayoutError):
            read_checkpoint(io.BytesIO(truncated))

    def test_virtual_image_rejected(self):
        image = build_memory_image(LLAMA2_7B, W4A16_KV8, context=1024)
        with pytest.raises(LayoutError):
            write_checkpoint(image, io.BytesIO())


class TestCommandGenerator:
    @pytest.fixture(scope="class")
    def gen(self):
        image = build_memory_image(LLAMA2_7B, W4A16_KV8, context=1024)
        return CommandGenerator(image)

    def test_read_coverage_matches_traffic_model(self, gen):
        from repro.memory.traffic import decode_traffic

        context = 100
        descs = gen.decode_step_descriptors(token_index=3, context=context)
        gen.check_bounds(descs)
        traffic = decode_traffic(LLAMA2_7B, W4A16_KV8, context)
        # Descriptors read weights + KV history + embedding row + norms.
        # Stream padding (superblocks) makes descriptor reads slightly
        # larger than the analytic byte count; pack reads ride the KV
        # stream in the layout, so compare against the non-pack total.
        analytic = traffic.total_bytes - traffic.kv_read_pack_bytes \
            - traffic.kv_write_bytes - traffic.kv_write_pack_bytes
        assert gen.read_bytes(descs) == pytest.approx(analytic, rel=0.01)

    def test_each_weight_region_read_once(self, gen):
        descs = gen.decode_step_descriptors(0, 10)
        weight_reads = [d.region for d in descs
                        if d.region.startswith("weights.") and not d.is_write]
        assert len(weight_reads) == len(set(weight_reads))
        assert len(weight_reads) == 32 * 7 + 1  # 7 projections + lm_head

    def test_kv_write_appends_at_context(self, gen):
        context = 17
        descs = gen.decode_step_descriptors(1, context)
        writes = [d for d in descs if d.is_write and d.region.startswith("kv.layer")]
        assert len(writes) == 32
        kv_token_bytes = 2 * LLAMA2_7B.kv_dim
        alloc = gen.image.allocations["kv.layer0"]
        assert writes[0].address == alloc.start + context * kv_token_bytes

    def test_no_kv_read_at_zero_context(self, gen):
        descs = gen.decode_step_descriptors(0, 0)
        kv_reads = [d for d in descs
                    if d.region.startswith("kv.layer") and not d.is_write]
        assert kv_reads == []

    def test_pack_writeback_every_16_tokens(self, gen):
        def pack_writes(token):
            descs = gen.decode_step_descriptors(token, 20)
            return [d for d in descs if d.region == "kv.scale_zero"]

        assert pack_writes(5) == []
        assert pack_writes(15) == []
        flushed = pack_writes(16)
        assert len(flushed) == 1
        assert flushed[0].is_write
        assert flushed[0].size == 2 * 32 * 32 * 64  # streams x bus word

    def test_context_beyond_reservation_rejected(self, gen):
        with pytest.raises(ScheduleError):
            gen.decode_step_descriptors(0, 1024)

    def test_bounds_check_catches_escape(self, gen):
        from repro.core.commands import Descriptor

        bad = Descriptor("embedding", 0, 10)
        with pytest.raises(ScheduleError):
            gen.check_bounds([bad])

    def test_embedding_read_indexed_by_token(self, gen):
        row = LLAMA2_7B.hidden_size * 2
        a = gen.decode_step_descriptors(0, 5)[0]
        b = gen.decode_step_descriptors(7, 5)[0]
        assert b.address - a.address == 7 * row


class TestPrefillDescriptors:
    @pytest.fixture(scope="class")
    def gen(self):
        image = build_memory_image(LLAMA2_7B, W4A16_KV8, context=1024)
        return CommandGenerator(image)

    def test_one_step_per_prompt_token(self, gen):
        steps = gen.prefill_descriptors(5)
        assert len(steps) == 5

    def test_context_grows_per_step(self, gen):
        steps = gen.prefill_descriptors(4)
        kv_reads = [sum(d.size for d in step
                        if d.region.startswith("kv.layer") and not d.is_write)
                    for step in steps]
        assert kv_reads[0] == 0
        assert all(a < b for a, b in zip(kv_reads, kv_reads[1:]))

    def test_weights_restreamed_each_step(self, gen):
        steps = gen.prefill_descriptors(3)
        weight_bytes = [sum(d.size for d in step
                            if d.region.startswith("weights."))
                        for step in steps]
        assert weight_bytes[0] == weight_bytes[1] == weight_bytes[2]

    def test_rejects_overlong_prompt(self, gen):
        with pytest.raises(ScheduleError):
            gen.prefill_descriptors(2000)

    def test_rejects_empty_prompt(self, gen):
        with pytest.raises(ScheduleError):
            gen.prefill_descriptors(0)
