"""Run-length telemetry and streaming: exact-expansion guarantees.

The contract under test: ``telemetry="windows"`` and streamed traces
are pure *representations* — every observable (events, step batches,
clocks, per-request token streams and latencies, percentiles) expands
to the bit-identical values the eager ``telemetry="full"`` run
materializes, across all three backends, both KV disciplines, and a
TP=2 sharded backend; ``telemetry="summary"`` preserves every scalar
aggregate and percentile exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ReplicaRouter,
    ShardedAnalyticalBackend,
    ShardedCycleBackend,
)
from repro.config import TINY_MODEL, QuantConfig
from repro.engine import (
    WINDOW_BREAK_REASONS,
    AnalyticalBackend,
    ContinuousBatchScheduler,
    CycleModelBackend,
    FinishReason,
    FunctionalBackend,
    Request,
    StepWindow,
    iter_synthetic_trace,
    synthetic_trace,
)
from repro.errors import SimulationError
from repro.stats import merge_sorted, percentile_of_runs

QUANT32 = QuantConfig(weight_group_size=32)
BLOCK_SIZE = 8
BUDGET_TOKENS = 256
MAX_BATCH = 4
PERCENTILES = (0.0, 25.0, 50.0, 95.0, 99.0, 100.0)


def make_engine(kind, kv_mode, tiny_qweights=None, tp=1, ff=True):
    kv = dict(kv_mode=kv_mode, block_size=BLOCK_SIZE,
              n_kv_blocks=BUDGET_TOKENS // BLOCK_SIZE)
    if kind == "functional":
        backend = FunctionalBackend(tiny_qweights, n_slots=MAX_BATCH,
                                    **kv)
    elif tp > 1:
        cls = ShardedCycleBackend if kind == "cycle" \
            else ShardedAnalyticalBackend
        backend = cls(TINY_MODEL, QUANT32, tp=tp, n_slots=MAX_BATCH, **kv)
    else:
        cls = CycleModelBackend if kind == "cycle" else AnalyticalBackend
        backend = cls(TINY_MODEL, QUANT32, n_slots=MAX_BATCH, **kv)
    budget = BUDGET_TOKENS if kv_mode == "slotted" else None
    return ContinuousBatchScheduler(backend, max_batch=MAX_BATCH,
                                    kv_token_budget=budget,
                                    fast_forward=ff)


def assert_reports_identical(a, b):
    assert a.total_time_s == b.total_time_s
    assert a.n_steps == b.n_steps
    assert a.step_batches == b.step_batches
    assert a.preemptions == b.preemptions
    assert a.max_batch_observed == b.max_batch_observed
    assert a.n_requests == b.n_requests
    assert a.total_new_tokens == b.total_new_tokens
    for ra, rb in zip(a.results, b.results):
        assert ra.request_id == rb.request_id
        assert tuple(ra.tokens) == tuple(rb.tokens)
        assert ra.prompt_len == rb.prompt_len
        assert ra.decode_step_s == rb.decode_step_s
        assert ra.ttft_s == rb.ttft_s
        assert ra.e2e_s == rb.e2e_s
        assert ra.finish_reason == rb.finish_reason
        assert ra.preemptions == rb.preemptions


def assert_percentiles_identical(a, b):
    for p in PERCENTILES:
        assert a.latency_percentile_s(p) == b.latency_percentile_s(p)
        assert a.ttft_percentile_s(p) == b.ttft_percentile_s(p)


class TestWindowedExpansionIsExact:
    """Satellite: hypothesis property over backends x KV modes x TP."""

    @pytest.mark.parametrize("kv_mode", ("slotted", "paged"))
    @pytest.mark.parametrize("kind", ("cycle", "analytical"))
    @settings(deadline=None, max_examples=12)
    @given(seed=st.integers(0, 10_000),
           arrival_rate=st.sampled_from([1e9, 5000.0, 300.0]),
           n_requests=st.integers(4, 24),
           decode_hi=st.integers(6, 40))
    def test_windows_expand_to_full(self, kind, kv_mode, seed,
                                    arrival_rate, n_requests, decode_hi):
        kwargs = dict(arrival_rate_rps=arrival_rate, seed=seed,
                      prompt_len=(3, 10), decode_len=(4, decode_hi),
                      shared_prefix_len=8)
        trace = synthetic_trace(TINY_MODEL, n_requests, **kwargs)
        eng_full = make_engine(kind, kv_mode)
        full = eng_full.run(trace)
        eng_win = make_engine(kind, kv_mode)
        windows = eng_win.run(
            iter_synthetic_trace(TINY_MODEL, n_requests, **kwargs),
            telemetry="windows")
        assert_reports_identical(windows, full)
        assert_percentiles_identical(windows, full)
        assert windows.mean_ttft_s == full.mean_ttft_s
        assert windows.mean_batch == full.mean_batch
        # Expanded event streams (clocks included) match bit for bit.
        assert eng_win.events == eng_full.events

        eng_sum = make_engine(kind, kv_mode)
        summary = eng_sum.run(
            iter_synthetic_trace(TINY_MODEL, n_requests, **kwargs),
            telemetry="summary")
        assert summary.total_time_s == full.total_time_s
        assert summary.n_steps == full.n_steps
        assert summary.total_new_tokens == full.total_new_tokens
        assert summary.max_batch_observed == full.max_batch_observed
        assert summary.mean_batch == full.mean_batch
        assert_percentiles_identical(summary, full)

    @pytest.mark.parametrize("kind", ("cycle", "analytical"))
    def test_sharded_tp2_windows_expand_to_full(self, kind):
        kwargs = dict(arrival_rate_rps=500.0, seed=4,
                      prompt_len=(3, 10), decode_len=(4, 24))
        trace = synthetic_trace(TINY_MODEL, 12, **kwargs)
        full = make_engine(kind, "slotted", tp=2).run(trace)
        eng = make_engine(kind, "slotted", tp=2)
        windows = eng.run(
            iter_synthetic_trace(TINY_MODEL, 12, **kwargs),
            telemetry="windows")
        assert_reports_identical(windows, full)
        assert_percentiles_identical(windows, full)

    @pytest.mark.parametrize("kv_mode", ("slotted", "paged"))
    def test_functional_windows_expand_to_full(self, kv_mode,
                                               tiny_qweights):
        """The functional backend never fast-forwards, but the windowed
        report (eager token columns, span-gathered latencies) must
        still reproduce the eager report exactly."""
        system = tuple(range(1, 17))
        trace = [Request(i, system + (30 + i, 40 + i), max_new_tokens=6)
                 for i in range(4)]
        full = make_engine("functional", kv_mode, tiny_qweights).run(trace)
        windows = make_engine("functional", kv_mode, tiny_qweights).run(
            trace, telemetry="windows")
        assert_reports_identical(windows, full)
        assert_percentiles_identical(windows, full)

    def test_windows_cover_steps_without_materializing(self):
        """A lone long decode must be recorded as run-length windows —
        far fewer records than steps — or the O(1)-per-window claim is
        silently broken."""
        eng = make_engine("cycle", "slotted")
        report = eng.run([Request(0, (1, 2, 3), max_new_tokens=40)],
                         telemetry="windows")
        records = eng._recorder.records
        window_steps = sum(r.count for r in records
                           if isinstance(r, StepWindow))
        assert len(records) < report.n_steps
        assert window_steps > report.n_steps // 2

    def test_oracle_eos_windows_match_full(self):
        """Oracle streams ending in EOS retire identically under
        windowed telemetry (tokens replayed through the oracle)."""
        stream = (21, 22, 23, 24, 25, 7)

        def oracle(request_id, step):
            return stream[step]

        def engine():
            backend = CycleModelBackend(TINY_MODEL, QUANT32, n_slots=1,
                                        token_oracle=oracle)
            return ContinuousBatchScheduler(
                backend, max_batch=1, kv_token_budget=BUDGET_TOKENS)

        requests = [Request(0, (5, 6), max_new_tokens=30, eos_id=7)]
        full = engine().run(requests)
        windows = engine().run(requests, telemetry="windows")
        assert_reports_identical(windows, full)
        assert windows.results[0].tokens == stream

    def test_summary_keeps_no_results(self):
        eng = make_engine("cycle", "slotted")
        report = eng.run([Request(0, (1, 2), max_new_tokens=4)],
                         telemetry="summary")
        with pytest.raises(SimulationError):
            report.results
        with pytest.raises(SimulationError):
            report.step_batches
        with pytest.raises(SimulationError):
            eng.events

    def test_unknown_level_rejected(self):
        eng = make_engine("cycle", "slotted")
        with pytest.raises(SimulationError):
            eng.run([Request(0, (1, 2), max_new_tokens=4)],
                    telemetry="everything")


class TestEventHorizonTiers:
    """Satellite: the multi-segment event-horizon tier is a pure
    optimization.  ``fast_forward="multi"`` must reproduce the single
    tier and the eager loop bit for bit on every observable, while the
    recorded window count collapses on retirement-dominated traces."""

    @pytest.mark.parametrize("kv_mode", ("slotted", "paged"))
    @pytest.mark.parametrize("kind", ("cycle", "analytical"))
    @settings(deadline=None, max_examples=8)
    @given(seed=st.integers(0, 10_000),
           arrival_rate=st.sampled_from([1e9, 2000.0, 150.0]),
           n_requests=st.integers(3, 12),
           decode_hi=st.integers(30, 80))
    def test_long_decode_tiers_agree(self, kind, kv_mode, seed,
                                     arrival_rate, n_requests,
                                     decode_hi):
        """Long decodes make predicted-retirement segments fire; the
        three tiers must stay bit-identical through them."""
        kwargs = dict(arrival_rate_rps=arrival_rate, seed=seed,
                      prompt_len=(3, 10), decode_len=(25, decode_hi),
                      shared_prefix_len=8)
        trace = synthetic_trace(TINY_MODEL, n_requests, **kwargs)
        eager = make_engine(kind, kv_mode, ff=False).run(trace)
        single = make_engine(kind, kv_mode, ff="single").run(trace)
        multi = make_engine(kind, kv_mode, ff="multi").run(trace)
        assert_reports_identical(single, eager)
        assert_reports_identical(multi, eager)
        assert_percentiles_identical(multi, eager)

    @pytest.mark.parametrize("kv_mode", ("slotted", "paged"))
    def test_oracle_mixed_eos_length_tiers_agree(self, kv_mode):
        """Mixed EOS and LENGTH finishes inside one batch: predicted
        retirements of both kinds fold at segment boundaries without
        disturbing the token streams."""
        streams = {
            0: (11, 12, 13, 7),
            1: (21, 22, 23, 24, 25, 26),
            2: (31, 7),
            3: (41, 42, 43, 44, 45, 46),
        }

        def oracle(request_id, step):
            return streams[request_id][step]

        def engine(ff):
            backend = CycleModelBackend(
                TINY_MODEL, QUANT32, n_slots=MAX_BATCH,
                token_oracle=oracle, kv_mode=kv_mode,
                block_size=BLOCK_SIZE,
                n_kv_blocks=BUDGET_TOKENS // BLOCK_SIZE)
            budget = BUDGET_TOKENS if kv_mode == "slotted" else None
            return ContinuousBatchScheduler(
                backend, max_batch=MAX_BATCH, kv_token_budget=budget,
                fast_forward=ff)

        requests = [Request(i, (5, 6 + i), max_new_tokens=6, eos_id=7)
                    for i in range(4)]
        eager = engine(False).run(requests)
        single = engine("single").run(requests)
        multi = engine("multi").run(requests)
        assert_reports_identical(single, eager)
        assert_reports_identical(multi, eager)
        assert {r.finish_reason for r in multi.results} \
            == {FinishReason.EOS, FinishReason.LENGTH}

    @pytest.mark.parametrize("kind", ("cycle", "analytical"))
    def test_sharded_tp2_tiers_agree(self, kind):
        kwargs = dict(arrival_rate_rps=800.0, seed=9,
                      prompt_len=(3, 10), decode_len=(20, 48))
        trace = synthetic_trace(TINY_MODEL, 10, **kwargs)
        eager = make_engine(kind, "slotted", tp=2, ff=False).run(trace)
        single = make_engine(kind, "slotted", tp=2,
                             ff="single").run(trace)
        multi = make_engine(kind, "slotted", tp=2,
                            ff="multi").run(trace)
        assert_reports_identical(single, eager)
        assert_reports_identical(multi, eager)
        assert_percentiles_identical(multi, eager)

    def test_retirement_dominated_trace_collapses_windows(self):
        """Staggered-length decodes with an empty arrival queue: the
        single tier breaks a window at every horizon (one per
        retirement), the multi tier folds the retirements into
        segments of the same window — O(admissions) windows."""
        trace = [Request(i, (1, 2, 3), max_new_tokens=12 + 9 * i)
                 for i in range(MAX_BATCH)]
        eng_single = make_engine("cycle", "slotted", ff="single")
        single = eng_single.run(trace, telemetry="windows")
        eng_multi = make_engine("cycle", "slotted", ff="multi")
        multi = eng_multi.run(trace, telemetry="windows")
        assert_reports_identical(multi, single)
        assert_percentiles_identical(multi, single)

        s_stats, m_stats = single.window_stats, multi.window_stats
        assert m_stats["n_windows"] < s_stats["n_windows"]
        assert m_stats["folded_retirements"] >= MAX_BATCH - 1
        assert s_stats["folded_retirements"] == 0
        assert m_stats["n_segments"] >= m_stats["n_windows"]
        assert len(eng_multi._recorder.records) \
            < len(eng_single._recorder.records)

    def test_break_histogram_shape_and_reasons(self):
        trace = synthetic_trace(TINY_MODEL, 16, arrival_rate_rps=400.0,
                                seed=5, prompt_len=(3, 8),
                                decode_len=(12, 40))
        report = make_engine("cycle", "slotted", ff="multi").run(
            trace, telemetry="windows")
        stats = report.window_stats
        assert set(stats["breaks"]) == set(WINDOW_BREAK_REASONS)
        assert "quota" in stats["breaks"]
        assert stats["n_windows"] > 0
        assert stats["n_segments"] >= stats["n_windows"]
        assert sum(stats["breaks"].values()) > 0
        # The multi tier folds EOS horizons into segments and the
        # slotted discipline never touches block frontiers.
        assert stats["breaks"]["eos"] == 0
        assert stats["breaks"]["block-frontier"] == 0

    @pytest.mark.parametrize("ff", ("single", "multi"))
    def test_zero_step_windows_leave_no_break_note(self, ff):
        """A fast-forward pass whose arrival cut lands on zero steps
        records no window — so it must not note a break either, or the
        histogram counts phantom windows.  An "arrival" note is only
        ever attached to a recorded window; in the multi tier every
        note is, so the histogram total is bounded by n_windows."""
        trace = synthetic_trace(TINY_MODEL, 24, arrival_rate_rps=900.0,
                                seed=17, prompt_len=(3, 8),
                                decode_len=(4, 30))
        report = make_engine("cycle", "slotted", ff=ff).run(
            trace, telemetry="windows")
        stats = report.window_stats
        assert stats["n_windows"] > 0
        assert stats["breaks"]["arrival"] <= stats["n_windows"]
        if ff == "multi":
            assert sum(stats["breaks"].values()) <= stats["n_windows"]

    def test_streamed_report_carries_window_stats(self):
        kwargs = dict(arrival_rate_rps=600.0, seed=13,
                      prompt_len=(3, 8), decode_len=(10, 30))
        full = make_engine("cycle", "paged").run(
            synthetic_trace(TINY_MODEL, 20, **kwargs))
        summary = make_engine("cycle", "paged").run(
            iter_synthetic_trace(TINY_MODEL, 20, **kwargs),
            telemetry="summary")
        assert summary.window_stats == full.window_stats
        assert full.window_stats["n_windows"] > 0

    def test_off_tier_records_no_windows(self):
        report = make_engine("cycle", "slotted", ff="off").run(
            [Request(0, (1, 2, 3), max_new_tokens=20)],
            telemetry="windows")
        stats = report.window_stats
        assert stats["n_windows"] == 0
        assert sum(stats["breaks"].values()) == 0

    def test_unknown_tier_rejected(self):
        with pytest.raises(SimulationError):
            make_engine("cycle", "slotted", ff="warp")


class TestStreamedSubmission:
    def test_iter_trace_matches_materialized_trace(self):
        kwargs = dict(arrival_rate_rps=123.0, seed=11, prompt_len=(2, 9),
                      decode_len=(3, 17), shared_prefix_len=4)
        eager = synthetic_trace(TINY_MODEL, 40, **kwargs)
        lazy = list(iter_synthetic_trace(TINY_MODEL, 40, **kwargs))
        assert eager == lazy

    def test_iter_trace_validates_eagerly(self):
        with pytest.raises(SimulationError):
            iter_synthetic_trace(TINY_MODEL, 0)

    def test_streamed_run_matches_materialized_run(self):
        kwargs = dict(arrival_rate_rps=700.0, seed=3, prompt_len=(3, 8),
                      decode_len=(4, 20))
        trace = synthetic_trace(TINY_MODEL, 25, **kwargs)
        full = make_engine("cycle", "slotted").run(trace)
        streamed = make_engine("cycle", "slotted").run(
            iter_synthetic_trace(TINY_MODEL, 25, **kwargs))
        assert_reports_identical(streamed, full)

    def test_unsorted_stream_rejected(self):
        reqs = [Request(0, (1, 2), 4, arrival_s=2.0),
                Request(1, (1, 2), 4, arrival_s=1.0)]
        with pytest.raises(SimulationError, match="sorted by arrival"):
            make_engine("cycle", "slotted").run(iter(reqs))

    def test_stream_keeps_waiting_queue_small(self):
        """The point of streaming: the queue holds in-flight work plus
        one look-ahead, not the trace."""
        seen = []
        eng = make_engine("cycle", "slotted")
        trace = iter_synthetic_trace(TINY_MODEL, 200,
                                     arrival_rate_rps=200.0, seed=2,
                                     prompt_len=(3, 6),
                                     decode_len=(4, 10))

        def watched():
            for request in trace:
                seen.append(len(eng.waiting))
                yield request

        eng.run(watched())
        assert max(seen) <= MAX_BATCH + 2


class TestStreamedCluster:
    def _engines(self, n):
        return [make_engine("cycle", "slotted") for _ in range(n)]

    @pytest.mark.parametrize("policy", ("round_robin", "least_loaded",
                                        "prefix_affinity"))
    def test_factory_run_matches_materialized_run(self, policy):
        kwargs = dict(arrival_rate_rps=2000.0, seed=6, prompt_len=(3, 8),
                      decode_len=(4, 16), shared_prefix_len=4)
        trace = synthetic_trace(TINY_MODEL, 30, **kwargs)
        eager = ReplicaRouter(self._engines(2), policy=policy).run(trace)

        def factory():
            return iter_synthetic_trace(TINY_MODEL, 30, **kwargs)

        streamed = ReplicaRouter(self._engines(2), policy=policy).run(
            factory, telemetry="windows")
        assert_reports_identical(streamed, eager)
        assert_percentiles_identical(streamed, eager)
        assert streamed.mean_ttft_s == eager.mean_ttft_s
        assert streamed.mean_batch == eager.mean_batch
        assert streamed.aggregate_tokens_per_s \
            == eager.aggregate_tokens_per_s
        assert streamed.n_replicas == eager.n_replicas
        assert streamed.replica_request_counts() \
            == eager.replica_request_counts()

        summary = ReplicaRouter(self._engines(2), policy=policy).run(
            factory, telemetry="summary")
        assert summary.total_time_s == eager.total_time_s
        assert summary.n_steps == eager.n_steps
        assert summary.total_new_tokens == eager.total_new_tokens
        assert_percentiles_identical(summary, eager)

    def test_factory_full_run_records_assignments_and_loads(self):
        """At telemetry='full' a factory run must report routing like a
        materialized run — assignments map and load ledger included."""
        kwargs = dict(arrival_rate_rps=2000.0, seed=6, prompt_len=(3, 8),
                      decode_len=(4, 16))
        trace = synthetic_trace(TINY_MODEL, 20, **kwargs)
        eager_router = ReplicaRouter(self._engines(2),
                                     policy="least_loaded")
        eager = eager_router.run(trace)
        factory_router = ReplicaRouter(self._engines(2),
                                       policy="least_loaded")
        streamed = factory_router.run(
            lambda: iter_synthetic_trace(TINY_MODEL, 20, **kwargs),
            telemetry="full")
        assert factory_router.assignments == eager_router.assignments
        assert streamed.assignments == eager.assignments
        assert factory_router.loads == eager_router.loads
        assert factory_router.loads \
            == factory_router.recompute_loads(trace)

    def test_cluster_merge_uses_kway_merge(self):
        """Satellite: the eager cluster report's percentile caches come
        from merging the replicas' sorted caches — and equal the
        re-sorted union exactly."""
        trace = synthetic_trace(TINY_MODEL, 24, arrival_rate_rps=1e9,
                                seed=8, prompt_len=(3, 8),
                                decode_len=(4, 16))
        report = ReplicaRouter(self._engines(3)).run(trace)
        assert report._sorted_decode_latencies() \
            == sorted(s for r in report.results for s in r.decode_step_s)
        assert report._sorted_ttfts() \
            == sorted(r.ttft_s for r in report.results)


class TestSketchLevel:
    """PR 8: ``telemetry="sketch"`` trades the exact latency sample for
    a t-digest; every other observable stays bit-identical to full."""

    KWARGS = dict(arrival_rate_rps=2000.0, seed=17, prompt_len=(3, 8),
                  decode_len=(4, 24), shared_prefix_len=4)
    N = 60

    def _pair(self, kind="cycle", kv_mode="slotted"):
        full = make_engine(kind, kv_mode).run(
            synthetic_trace(TINY_MODEL, self.N, **self.KWARGS))
        sketch = make_engine(kind, kv_mode).run(
            iter_synthetic_trace(TINY_MODEL, self.N, **self.KWARGS),
            telemetry="sketch")
        return full, sketch

    @pytest.mark.parametrize("kind", ("cycle", "analytical"))
    def test_aggregates_and_ttft_exact(self, kind):
        full, sketch = self._pair(kind=kind)
        assert sketch.total_time_s == full.total_time_s
        assert sketch.n_steps == full.n_steps
        assert sketch.total_new_tokens == full.total_new_tokens
        assert sketch.preemptions == full.preemptions
        assert sketch.n_requests == full.n_requests
        assert sketch.window_stats == full.window_stats
        # TTFTs are per-request scalars, kept exact at every level.
        for p in PERCENTILES:
            assert sketch.ttft_percentile_s(p) == full.ttft_percentile_s(p)

    def test_latency_percentiles_within_digest_bound(self):
        full, sketch = self._pair()
        ordered = sorted(s for r in full.results
                         for s in r.decode_step_s)
        digest = sketch.latency_digest()
        assert digest.n == len(ordered)
        assert sketch.latency_percentile_s(0.0) == ordered[0]
        assert sketch.latency_percentile_s(100.0) == ordered[-1]
        bound = digest.rank_error_bound
        n = len(ordered)
        for p in PERCENTILES[1:-1]:
            value = sketch.latency_percentile_s(p)
            below = sum(1 for s in ordered if s < value)
            at_most = sum(1 for s in ordered if s <= value)
            target = p / 100.0 * n
            err = 0.0 if below - 1 <= target <= at_most + 1 \
                else min(abs(below - 1 - target),
                         abs(at_most + 1 - target)) / n
            assert err <= bound, (p, value, err, bound)

    def test_sample_accessors_gated(self):
        _, sketch = self._pair()
        with pytest.raises(SimulationError, match="latency_digest"):
            sketch.latency_runs()
        with pytest.raises(SimulationError):
            sketch.results
        summary = make_engine("cycle", "slotted").run(
            iter_synthetic_trace(TINY_MODEL, 8, **self.KWARGS),
            telemetry="summary")
        with pytest.raises(SimulationError, match="latency_runs"):
            summary.latency_digest()

    def test_recorder_storage_by_level(self):
        from repro.obs import ColumnarRecords

        eng_win = make_engine("cycle", "slotted")
        eng_win.run(iter_synthetic_trace(TINY_MODEL, 12, **self.KWARGS),
                    telemetry="windows")
        assert isinstance(eng_win._recorder.records, ColumnarRecords)
        eng_full = make_engine("cycle", "slotted")
        eng_full.run(synthetic_trace(TINY_MODEL, 12, **self.KWARGS))
        assert isinstance(eng_full._recorder.records, list)

    def test_cluster_merges_replica_digests(self):
        def engines():
            return [make_engine("cycle", "slotted") for _ in range(2)]

        def factory():
            return iter_synthetic_trace(TINY_MODEL, self.N,
                                        **self.KWARGS)

        eager = ReplicaRouter(engines()).run(
            synthetic_trace(TINY_MODEL, self.N, **self.KWARGS))
        sketch = ReplicaRouter(engines()).run(factory,
                                              telemetry="sketch")
        assert sketch.total_time_s == eager.total_time_s
        assert sketch.n_steps == eager.n_steps
        ordered = eager._sorted_decode_latencies()
        digest = sketch.latency_digest()
        assert digest.n == len(ordered)
        assert sketch.latency_percentile_s(100.0) == ordered[-1]
        bound = digest.rank_error_bound
        for p in PERCENTILES[1:-1]:
            value = sketch.latency_percentile_s(p)
            below = sum(1 for s in ordered if s < value)
            at_most = sum(1 for s in ordered if s <= value)
            target = p / 100.0 * len(ordered)
            err = 0.0 if below - 1 <= target <= at_most + 1 \
                else min(abs(below - 1 - target),
                         abs(at_most + 1 - target)) / len(ordered)
            assert err <= bound, (p, value, err, bound)
        with pytest.raises(SimulationError, match="latency_percentile_s"):
            ReplicaRouter(engines()).run(
                factory, telemetry="summary").latency_digest()


class TestRunLengthPrimitives:
    @settings(deadline=None, max_examples=60)
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.integers(1, 9)), min_size=1, max_size=40),
        st.floats(min_value=0, max_value=100))
    def test_percentile_of_runs_matches_expansion(self, runs, p):
        order = np.argsort([v for v, _ in runs], kind="stable")
        vals = np.asarray([runs[i][0] for i in order])
        cnts = np.asarray([runs[i][1] for i in order])
        expanded = sorted(v for v, c in runs for _ in range(c))
        from repro.stats import percentile_of_sorted

        assert percentile_of_runs(vals, cnts, p) \
            == percentile_of_sorted(expanded, p)

    @settings(deadline=None, max_examples=60)
    @given(st.lists(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                                       allow_nan=False), max_size=20),
                    max_size=6))
    def test_merge_sorted_matches_resort(self, lists):
        lists = [sorted(one) for one in lists]
        merged = merge_sorted(lists)
        assert merged == sorted(x for one in lists for x in one)

    @settings(deadline=None, max_examples=60)
    @given(st.lists(st.floats(min_value=0, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=64),
           st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_cumsum_matches_sequential_fold(self, deltas, start):
        """The closed-form window clock is np.cumsum seeded with the
        running clock; it must reproduce the eager per-step fold
        ``clock += delta`` to the last bit."""
        arr = np.empty(len(deltas) + 1)
        arr[0] = start
        arr[1:] = deltas
        np.cumsum(arr, out=arr)
        clock = start
        folded = [clock]
        for d in deltas:
            clock = clock + np.float64(d)
            folded.append(clock)
        assert arr.tolist() == folded
