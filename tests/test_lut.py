"""Quarter-sine ROM and RoPE address generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.numerics.lut import InvFreqRom, QuarterSineRom, RopeAngleGenerator


class TestQuarterSineRom:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            QuarterSineRom(depth=1000)

    def test_cardinal_points(self):
        rom = QuarterSineRom(4096)
        full = rom.full_cycle
        assert float(rom.sin(0)) == 0.0
        assert float(rom.sin(full // 4)) == pytest.approx(1.0, abs=2e-3)
        assert float(rom.sin(full // 2)) == pytest.approx(0.0, abs=2e-3)
        assert float(rom.sin(3 * full // 4)) == pytest.approx(-1.0, abs=2e-3)

    def test_cos_is_shifted_sin(self):
        rom = QuarterSineRom(1024)
        addr = np.arange(0, rom.full_cycle, 13)
        assert np.array_equal(rom.cos(addr), rom.sin(addr + rom.depth))

    def test_matches_numpy_sin_everywhere(self):
        rom = QuarterSineRom(4096)
        addr = np.arange(0, rom.full_cycle, 97)
        phases = addr * 2 * np.pi / rom.full_cycle
        # FP16 storage + table quantization: error stays under ~1e-3.
        assert np.max(np.abs(rom.sin(addr).astype(np.float64)
                             - np.sin(phases))) < 1.5e-3

    def test_wraps_past_full_cycle(self):
        rom = QuarterSineRom(256)
        assert rom.sin(rom.full_cycle + 5) == rom.sin(5)

    def test_phase_to_address_quantizes(self):
        rom = QuarterSineRom(4096)
        assert rom.phase_to_address(0.0) == 0
        assert rom.phase_to_address(2 * np.pi) == 0
        assert rom.phase_to_address(np.pi) == rom.full_cycle // 2


class TestInvFreqRom:
    def test_rejects_odd_head_dim(self):
        with pytest.raises(ConfigError):
            InvFreqRom(head_dim=63)

    def test_first_frequency_is_one(self):
        rom = InvFreqRom(128)
        assert float(rom.inv_freq(0)) == 1.0

    def test_frequencies_decrease(self):
        rom = InvFreqRom(128)
        freqs = rom.inv_freq(np.arange(rom.num_pairs)).astype(np.float64)
        assert np.all(np.diff(freqs) < 0)

    def test_matches_formula(self):
        rom = InvFreqRom(64, theta=10000.0)
        expected = 10000.0 ** (-np.arange(0, 64, 2) / 64)
        got = rom.inv_freq(np.arange(32)).astype(np.float64)
        assert np.allclose(got, expected, rtol=1e-3)

    def test_out_of_range_pair_raises(self):
        rom = InvFreqRom(64)
        with pytest.raises(ConfigError):
            rom.inv_freq(32)


class TestRopeAngleGenerator:
    def test_position_zero_all_cos_one(self):
        gen = RopeAngleGenerator(head_dim=64)
        sin, cos = gen.sin_cos(0)
        assert np.all(sin.astype(np.float64) == 0.0)
        assert np.allclose(cos.astype(np.float64), 1.0, atol=2e-3)

    def test_negative_position_rejected(self):
        gen = RopeAngleGenerator(head_dim=64)
        with pytest.raises(ConfigError):
            gen.addresses(-1)

    def test_addresses_match_exact_phases(self):
        gen = RopeAngleGenerator(head_dim=128)
        pos = 100
        addr = gen.addresses(pos)
        inv = 10000.0 ** (-np.arange(0, 128, 2) / 128)
        exact = (pos * inv) % (2 * np.pi)
        got = addr * 2 * np.pi / gen.rom.full_cycle
        err = np.abs(np.angle(np.exp(1j * (got - exact))))
        # Quantization: half a ROM step plus FP16 inv-freq error at pos=100.
        assert np.max(err) < 2 * np.pi / gen.rom.full_cycle + 0.05

    def test_sin_cos_norm_close_to_one(self):
        gen = RopeAngleGenerator(head_dim=128)
        sin, cos = gen.sin_cos(517)
        norm = sin.astype(np.float64) ** 2 + cos.astype(np.float64) ** 2
        assert np.allclose(norm, 1.0, atol=5e-3)
