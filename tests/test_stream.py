"""Bit-true stream datapath: DDR bytes -> dequant -> DOT fidelity."""

import numpy as np
import pytest

from repro.config import TINY_MODEL
from repro.core.stream import StreamingMatvec, WeightStreamReader
from repro.errors import LayoutError
from repro.packing.memimage import build_memory_image
from repro.packing.weight_layout import WeightLayoutSpec, encode_weight_stream
from repro.quant.groupquant import dequantize_groups, quantize_groups


@pytest.fixture(scope="module")
def packed(rng_mod):
    w = rng_mod.standard_normal((24, 256))
    params = quantize_groups(w, 4, 128)
    spec = WeightLayoutSpec()
    return w, params, spec, encode_weight_stream(params, spec)


@pytest.fixture(scope="module")
def rng_mod():
    return np.random.default_rng(99)


class TestWeightStreamReader:
    def test_group_count(self, packed):
        _, params, spec, data = packed
        reader = WeightStreamReader(data, params.codes.size // 128, spec)
        assert sum(1 for _ in reader.groups()) == 48  # 24 rows x 2 groups

    def test_groups_match_quantizer(self, packed):
        _, params, spec, data = packed
        reader = WeightStreamReader(data, 48, spec)
        flat_scales = params.scales.reshape(-1)
        flat_zeros = params.zeros.reshape(-1)
        grid = params.codes.reshape(48, 128)
        for group in reader.groups():
            i = group.group_index
            assert group.scale == flat_scales[i]
            assert group.zero == int(flat_zeros[i])
            assert np.array_equal(group.codes, grid[i])

    def test_beats_accounted(self, packed):
        _, _, spec, data = packed
        reader = WeightStreamReader(data, 48, spec)
        list(reader.groups())
        assert reader.beats_consumed == len(data) // spec.bus_bytes

    def test_wrong_length_rejected(self, packed):
        _, _, spec, data = packed
        with pytest.raises(LayoutError):
            WeightStreamReader(data[:-64], 48, spec)


class TestStreamingMatvec:
    def test_dequantized_matrix_matches(self, packed):
        _, params, spec, data = packed
        sm = StreamingMatvec(spec)
        from_stream = sm.dequantize_stream(data, 24, 256)
        direct = dequantize_groups(params, dtype=np.float16)
        assert np.array_equal(from_stream, direct.astype(np.float16))

    def test_matvec_matches_fp16_matvec(self, packed, rng_mod):
        from repro.numerics.fp16 import fp16, fp16_matvec

        _, params, spec, data = packed
        x = rng_mod.standard_normal(256)
        sm = StreamingMatvec(spec)
        via_stream = sm.matvec(data, x, 24, 256)
        direct = fp16_matvec(
            dequantize_groups(params, dtype=np.float32), fp16(x), 128)
        assert np.array_equal(via_stream, direct)

    def test_indivisible_features_rejected(self, packed):
        _, _, spec, data = packed
        with pytest.raises(LayoutError):
            StreamingMatvec(spec).dequantize_stream(data, 24, 250)


class TestMemoryImageFidelity:
    """The strongest check: bytes placed in the DDR image drive a matvec
    that equals the QuantizedModel's own projection output."""

    def test_image_stream_matches_functional_model(self, tiny_qweights,
                                                   tiny_quant, rng_mod):
        from repro.model.quantized import QuantizedModel
        from repro.numerics.fp16 import fp16

        image = build_memory_image(TINY_MODEL, tiny_quant, context=64,
                                   qweights=tiny_qweights)
        spec = WeightLayoutSpec(weight_bits=tiny_quant.weight_bits,
                                zero_bits=tiny_quant.weight_zero_bits,
                                group_size=tiny_quant.weight_group_size)
        model = QuantizedModel(tiny_qweights)
        x = rng_mod.standard_normal(TINY_MODEL.hidden_size)

        result = tiny_qweights.projection(1, "wq")
        data = image.data["weights.layer1.wq"]
        sm = StreamingMatvec(spec)
        via_image = sm.matvec(data, x, TINY_MODEL.hidden_size,
                              TINY_MODEL.hidden_size,
                              channel_scales=result.channel_scales)
        via_model = model._matvec(model._mats[1]["wq"], fp16(x))
        # Same dequantized values, same tile schedule: bit-identical up to
        # the one FP16 rounding difference from scaling the activation
        # instead of the weight matrix.
        assert np.allclose(via_image.astype(np.float64),
                           via_model.astype(np.float64), atol=0.02)

    def test_embedding_bytes_roundtrip(self, tiny_qweights, tiny_quant):
        image = build_memory_image(TINY_MODEL, tiny_quant, context=64,
                                   qweights=tiny_qweights)
        raw = image.data["embedding"]
        n = TINY_MODEL.vocab_size * TINY_MODEL.hidden_size
        table = np.frombuffer(raw[: n * 2], dtype=np.float16).reshape(
            TINY_MODEL.vocab_size, TINY_MODEL.hidden_size)
        assert np.array_equal(table, tiny_qweights.embedding)
