"""Whole-token decode scheduler."""

import pytest

from repro.config import GPT2_1_5B, LLAMA2_7B, W4A16_KV8
from repro.core.scheduler import TokenScheduler, build_token_schedule
from repro.errors import ScheduleError


@pytest.fixture(scope="module")
def sched():
    return TokenScheduler(LLAMA2_7B, W4A16_KV8)


def test_segment_inventory(sched):
    ts = sched.build(context=64)
    names = [s.name for s in ts.segments]
    assert names[0] == "embedding"
    assert "layer0.attn" in names
    assert "layer31.mlp.down" in names
    assert names[-2] == "final_norm"
    assert names[-1] == "lm_head"
    # 1 embedding + 32 x (attn + gate + up + down) + final_norm + lm_head.
    assert len(names) == 1 + 32 * 4 + 2


def test_segment_lookup(sched):
    ts = sched.build(context=16)
    assert ts.segment("lm_head").transfer_bytes > 0
    with pytest.raises(ScheduleError):
        ts.segment("nonexistent")


def test_transfer_bytes_match_traffic_model(sched):
    from repro.memory.traffic import decode_traffic

    ts = sched.build(context=100)
    traffic = decode_traffic(LLAMA2_7B, W4A16_KV8, context=100)
    assert ts.total_transfer_bytes == pytest.approx(traffic.total_bytes,
                                                    rel=0.01)


def test_fused_exposed_only_final_norm(sched):
    ts = sched.build(context=512, mode="fused")
    exposed = {s.name: s.exposed_misc_cycles for s in ts.segments
               if s.exposed_misc_cycles > 0}
    assert set(exposed) == {"final_norm"}


def test_coarse_slower_than_fused(sched):
    fused = sched.build(context=512, mode="fused").total_cycles
    coarse = sched.build(context=512, mode="coarse").total_cycles
    assert coarse > fused * 1.02


def test_cycles_grow_with_context(sched):
    assert sched.build(900).total_cycles > sched.build(100).total_cycles


def test_bad_mode_rejected(sched):
    with pytest.raises(ScheduleError):
        sched.build(context=1, mode="quantum")


def test_ungated_model_has_no_gate_segment():
    ts = build_token_schedule(GPT2_1_5B, W4A16_KV8, context=16)
    assert not any("gate" in s.name for s in ts.segments)


def test_convenience_wrapper_matches_class(sched):
    a = build_token_schedule(LLAMA2_7B, W4A16_KV8, context=32)
    b = sched.build(context=32)
    assert a.total_cycles == pytest.approx(b.total_cycles)
