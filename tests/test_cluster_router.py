"""Data-parallel replica routing and merged cluster reports."""

import pytest

from repro.cluster import (
    ClusterServeReport,
    ReplicaRouter,
    merge_reports,
)
from repro.cluster.router import _affinity_key
from repro.config import TINY_MODEL, QuantConfig
from repro.engine import (
    ContinuousBatchScheduler,
    CycleModelBackend,
    Request,
    synthetic_trace,
)
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def quant32():
    return QuantConfig(weight_group_size=32)


def engines(quant, n, kv_mode="slotted", max_batch=4, **kv):
    return [ContinuousBatchScheduler(
        CycleModelBackend(TINY_MODEL, quant, n_slots=max_batch,
                          kv_mode=kv_mode, **kv),
        max_batch=max_batch, kv_token_budget=256 if kv_mode == "slotted"
        else None)
        for _ in range(n)]


def trace(n=8, seed=0, shared_prefix_len=0):
    return synthetic_trace(TINY_MODEL, n_requests=n, arrival_rate_rps=1e9,
                           prompt_len=(3, 6), decode_len=(4, 8), seed=seed,
                           shared_prefix_len=shared_prefix_len)


class TestPolicies:
    def test_round_robin_spreads_evenly(self, quant32):
        router = ReplicaRouter(engines(quant32, 3), policy="round_robin")
        report = router.run(trace(9))
        assert report.replica_request_counts() == [3, 3, 3]

    def test_least_loaded_balances_token_work(self, quant32):
        router = ReplicaRouter(engines(quant32, 2), policy="least_loaded")
        # One giant request, then small ones: the giant replica must be
        # avoided until loads even out.
        reqs = [Request(0, tuple(range(1, 30)), max_new_tokens=30)]
        reqs += [Request(i, (5, 6, 7), max_new_tokens=4)
                 for i in range(1, 6)]
        router.run(reqs)
        assert router.assignments[0] == 0
        assert all(router.assignments[i] == 1 for i in range(1, 5))

    @pytest.mark.parametrize("policy", ("round_robin", "least_loaded",
                                        "prefix_affinity"))
    def test_running_load_counters_match_recomputation(self, quant32,
                                                       policy):
        """The O(1) load ledger must equal summing every routed
        request's cost from scratch — the pinned invariant behind
        least-loaded's incremental bookkeeping."""
        router = ReplicaRouter(engines(quant32, 3), policy=policy)
        reqs = trace(17, seed=5, shared_prefix_len=4)
        for request in reqs:
            router.route(request)
        assert router.loads == router.recompute_loads(reqs)
        assert sum(router.loads) == sum(
            len(r.prompt) + r.max_new_tokens for r in reqs)

    def test_prefix_affinity_colocates_shared_prompts(self, quant32):
        router = ReplicaRouter(engines(quant32, 4),
                               policy="prefix_affinity")
        shared = trace(8, shared_prefix_len=16)
        report = router.run(shared)
        replicas = {report.assignments[r.request_id] for r in shared}
        assert len(replicas) == 1  # every sharer landed together

    def test_prefix_affinity_feeds_one_paged_cache(self, quant32):
        """Colocated sharers hit one replica's PrefixCache; a spread
        policy would split (and duplicate) the resident blocks."""
        group = [ContinuousBatchScheduler(
            CycleModelBackend(TINY_MODEL, quant32, n_slots=4,
                              kv_mode="paged", block_size=8,
                              n_kv_blocks=32), max_batch=4)
            for _ in range(2)]
        router = ReplicaRouter(group, policy="prefix_affinity")
        router.run(trace(6, shared_prefix_len=16))
        reused = [e.backend.paged_kv.prefix_reused_tokens for e in group]
        assert sorted(reused) == [0, 5 * 16]  # one cold, one all-hits

    def test_short_prompts_fall_back_to_least_loaded(self, quant32):
        router = ReplicaRouter(engines(quant32, 2),
                               policy="prefix_affinity")
        reqs = [Request(i, (9,), max_new_tokens=2) for i in range(4)]
        router.run(reqs)
        counts = [0, 0]
        for replica in router.assignments.values():
            counts[replica] += 1
        assert counts == [2, 2]

    def test_affinity_key_ignores_final_token(self):
        assert _affinity_key((1, 2, 3), 8) == _affinity_key((1, 2, 9), 8)
        assert _affinity_key((1, 2, 3, 4), 2) == _affinity_key(
            (1, 2, 7, 8), 2)


class TestMergedReport:
    def test_merge_preserves_all_requests_and_metrics(self, quant32):
        router = ReplicaRouter(engines(quant32, 2))
        report = router.run(trace(8))
        assert isinstance(report, ClusterServeReport)
        assert len(report.results) == 8
        assert [r.request_id for r in report.results] == list(range(8))
        assert report.total_time_s == max(
            r.total_time_s for r in report.replica_reports)
        assert report.n_steps == sum(
            r.n_steps for r in report.replica_reports)
        # Inherited ServeReport metrics work on the union.
        assert report.mean_ttft_s > 0
        assert report.ttft_percentile_s(95) >= report.ttft_percentile_s(50)
        assert report.latency_percentile_s(50) > 0

    def test_replicas_raise_cluster_throughput(self, quant32):
        single = ReplicaRouter(engines(quant32, 1)).run(trace(12))
        double = ReplicaRouter(engines(quant32, 2)).run(trace(12))
        assert double.aggregate_tokens_per_s \
            > 1.5 * single.aggregate_tokens_per_s

    def test_merge_requires_reports(self):
        with pytest.raises(SimulationError):
            merge_reports([], {})


class TestRouterGuards:
    def test_empty_router_rejected(self):
        with pytest.raises(SimulationError):
            ReplicaRouter([])

    def test_unknown_policy_rejected(self, quant32):
        with pytest.raises(SimulationError):
            ReplicaRouter(engines(quant32, 2), policy="random")

    def test_double_routing_rejected(self, quant32):
        router = ReplicaRouter(engines(quant32, 2))
        request = Request(0, (1, 2, 3), max_new_tokens=2)
        router.route(request)
        with pytest.raises(SimulationError):
            router.route(request)

    def test_run_is_repeatable(self, quant32):
        """Each run() is a fresh replay: request ids and load state from
        an earlier replay must not leak into the next."""
        router = ReplicaRouter(engines(quant32, 2), policy="least_loaded")
        first = router.run(trace(6))
        second = router.run(trace(6))
        assert first.assignments == second.assignments
        assert len(second.results) == 6
