"""KV8 cache quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant.kv8 import (
    kv_dequantize,
    kv_quantize,
    kv_roundtrip_error,
)


def test_codes_are_uint8(rng):
    codes, params = kv_quantize(rng.standard_normal(128))
    assert codes.dtype == np.uint8


def test_scale_matches_span(rng):
    x = rng.standard_normal(64) * 3
    _, params = kv_quantize(x)
    expected = (x.max() - x.min()) / 255
    assert float(params.scale) == pytest.approx(expected, rel=1e-2)


def test_zero_point_definition(rng):
    x = rng.standard_normal(64)
    _, params = kv_quantize(x)
    assert params.zero == int(np.ceil(x.min() / float(params.scale)))


def test_roundtrip_error_within_half_step(rng):
    x = rng.standard_normal(128)
    _, params = kv_quantize(x)
    err = kv_roundtrip_error(x)
    # The paper's ceil'd zero point clips up to one full step at the range
    # minimum; everywhere else the error is half a step plus FP16 noise.
    assert err <= float(params.scale) * 1.01 + 2e-3


def test_8bit_beats_4bit(rng):
    x = rng.standard_normal(128)
    assert kv_roundtrip_error(x, bits=8) < kv_roundtrip_error(x, bits=4) / 4


def test_constant_vector(rng):
    codes, params = kv_quantize(np.full(16, 2.5))
    x_hat = kv_dequantize(codes, params, np.float64)
    assert np.allclose(x_hat, 2.5, atol=2e-3)


def test_empty_raises():
    with pytest.raises(QuantizationError):
        kv_quantize(np.array([]))


def test_all_zero_vector():
    codes, params = kv_quantize(np.zeros(32))
    assert np.allclose(kv_dequantize(codes, params, np.float64), 0.0,
                       atol=1e-6)


def test_pack_bits_is_32():
    _, params = kv_quantize(np.arange(8.0))
    assert params.pack_bits() == 32


def test_dequantize_uses_fp16(rng):
    codes, params = kv_quantize(rng.standard_normal(16))
    assert kv_dequantize(codes, params).dtype == np.float16


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.floats(min_value=0.01, max_value=100.0))
@settings(max_examples=60, deadline=None)
def test_roundtrip_error_scales_with_magnitude(seed, magnitude):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(64) * magnitude
    _, params = kv_quantize(x)
    err = kv_roundtrip_error(x)
    # One step at worst (ceil'd zero point), plus FP16 rounding of the
    # scale and dequantized product (proportional to the data magnitude).
    assert err <= float(params.scale) * 1.01 + magnitude * 6e-3
