"""Multi-sequence slotted KV cache."""

import numpy as np
import pytest

from repro.config import TINY_MODEL
from repro.errors import SimulationError
from repro.model.kvcache import QuantizedKVCache, SlottedKVCache


@pytest.fixture()
def pool():
    return SlottedKVCache(TINY_MODEL, n_slots=3)


def _kv(seed):
    rng = np.random.default_rng(seed)
    shape = (TINY_MODEL.kv_heads, TINY_MODEL.head_dim)
    return rng.normal(size=shape), rng.normal(size=shape)


class TestAllocation:
    def test_allocate_all_slots(self, pool):
        slots = [pool.allocate() for _ in range(3)]
        assert sorted(slots) == [0, 1, 2]
        assert pool.n_allocated == 3
        assert pool.n_free == 0

    def test_overflow_raises(self, pool):
        for _ in range(3):
            pool.allocate()
        with pytest.raises(SimulationError):
            pool.allocate()

    def test_free_recycles(self, pool):
        slot = pool.allocate()
        pool.free(slot)
        assert pool.n_free == 3
        assert pool.allocate() == slot

    def test_free_unallocated_raises(self, pool):
        with pytest.raises(SimulationError):
            pool.free(0)
        with pytest.raises(SimulationError):
            pool.free(99)

    def test_view_of_unallocated_raises(self, pool):
        with pytest.raises(SimulationError):
            pool.view(1)

    def test_bad_pool_size_rejected(self):
        with pytest.raises(SimulationError):
            SlottedKVCache(TINY_MODEL, n_slots=0)


class TestSlotIsolation:
    def test_views_are_independent_sequences(self, pool):
        a, b = pool.allocate(), pool.allocate()
        ka, va = _kv(1)
        kb, vb = _kv(2)
        pool.view(a).append(0, ka, va, position=0)
        pool.view(b).append(0, kb, vb, position=0)
        got_a = pool.view(a).keys(0, head=0, length=1)
        got_b = pool.view(b).keys(0, head=0, length=1)
        assert not np.allclose(got_a, got_b)

    def test_view_quacks_like_quantized_cache(self, pool):
        slot = pool.allocate()
        view = pool.view(slot)
        assert isinstance(view, QuantizedKVCache)

    def test_free_resets_contents(self, pool):
        slot = pool.allocate()
        k, v = _kv(3)
        for layer in range(TINY_MODEL.num_layers):
            pool.view(slot).append(layer, k, v, position=0)
        assert pool.view(slot).length == 1
        pool.free(slot)
        again = pool.allocate()
        assert again == slot
        assert pool.view(again).length == 0
        with pytest.raises(SimulationError):
            pool.view(again).keys(0, head=0, length=1)

    def test_total_tokens_tracks_live_slots(self, pool):
        a, b = pool.allocate(), pool.allocate()
        k, v = _kv(4)
        for layer in range(TINY_MODEL.num_layers):
            pool.view(a).append(layer, k, v, position=0)
            pool.view(b).append(layer, k, v, position=0)
            pool.view(b).append(layer, k, v, position=1)
        assert pool.total_tokens() == 3
        assert pool.length(a) == 1
        assert pool.length(b) == 2
        pool.free(b)
        assert pool.total_tokens() == 1

    def test_payload_bytes_scale_with_tokens(self, pool):
        a = pool.allocate()
        assert pool.payload_bytes() == 0
        k, v = _kv(5)
        for layer in range(TINY_MODEL.num_layers):
            pool.view(a).append(layer, k, v, position=0)
        per_token = 2 * TINY_MODEL.num_layers * TINY_MODEL.kv_dim
        assert pool.payload_bytes() == per_token


class TestUseAfterFree:
    """Freeing a slot revokes its views instead of silently handing a
    stale reference the next sequence's storage."""

    def test_stale_view_read_raises(self, pool):
        slot = pool.allocate()
        view = pool.view(slot)
        k, v = _kv(6)
        for layer in range(TINY_MODEL.num_layers):
            view.append(layer, k, v, position=0)
        pool.free(slot)
        with pytest.raises(SimulationError):
            view.keys(0, head=0, length=1)
        with pytest.raises(SimulationError):
            view.values(0, head=0, length=1)

    def test_stale_view_write_raises(self, pool):
        slot = pool.allocate()
        view = pool.view(slot)
        pool.free(slot)
        k, v = _kv(7)
        with pytest.raises(SimulationError):
            view.append(0, k, v, position=0)

    def test_stale_view_stays_revoked_after_slot_reuse(self, pool):
        slot = pool.allocate()
        stale = pool.view(slot)
        pool.free(slot)
        again = pool.allocate()
        assert again == slot
        fresh = pool.view(again)
        k, v = _kv(8)
        for layer in range(TINY_MODEL.num_layers):
            fresh.append(layer, k, v, position=0)
        # The new sequence's data is readable through the new view only.
        assert fresh.keys(0, head=0, length=1).shape == (1, 16)
        with pytest.raises(SimulationError):
            stale.keys(0, head=0, length=1)
        with pytest.raises(SimulationError):
            stale.append(0, k, v, position=1)
