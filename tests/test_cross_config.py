"""Cross-configuration coverage: the machinery on non-default models.

Everything in the library is exercised on LLaMA2-7B and the tiny test
model; these tests run the same paths on the other presets (GQA
TinyLlama, tied/ungated GPT-2, W8, ZCU102) to pin down that nothing is
silently LLaMA-shaped.
"""

import numpy as np
import pytest

from repro.config import (
    GPT2_1_5B,
    TINYLLAMA_1_1B,
    ZCU102,
    ModelConfig,
    QuantConfig,
    W4A16_KV8,
)
from repro.core.cyclemodel import CycleModel
from repro.core.commands import CommandGenerator
from repro.core.verification import verify_datapath
from repro.model.weights import quantize_model, random_weights
from repro.packing.memimage import build_memory_image
from repro.packing.weight_layout import (
    WeightLayoutSpec,
    decode_weight_stream,
    encode_weight_stream,
)
from repro.quant.groupquant import quantize_groups


class TestGqaModel:
    def test_memory_image_builds(self):
        quant = QuantConfig(weight_group_size=128)
        image = build_memory_image(TINYLLAMA_1_1B, quant, context=1024)
        # 1.1B at ~4.19 bits + KV: comfortably under 1 GiB.
        assert image.total_bytes() < 1 << 30
        assert image.address_map.overlaps() == []

    def test_command_stream_covers_gqa_kv(self):
        quant = QuantConfig(weight_group_size=128)
        image = build_memory_image(TINYLLAMA_1_1B, quant, context=1024)
        gen = CommandGenerator(image)
        descs = gen.decode_step_descriptors(0, 100)
        gen.check_bounds(descs)
        kv_reads = sum(d.size for d in descs
                       if d.region.startswith("kv.layer") and not d.is_write)
        # 22 layers x 2 x 100 tokens x 256-dim KV at 8 bits.
        assert kv_reads == 22 * 2 * 100 * 256

    def test_cycle_model_runs_on_zcu102(self):
        cm = CycleModel(TINYLLAMA_1_1B, W4A16_KV8, ZCU102)
        step = cm.decode_step(512)
        # 21.3 GB/s over ~0.54 GB of weights: tens of tokens/s territory.
        assert 15 < step.tokens_per_s < 40


class TestTiedUngatedModel:
    def test_quantize_and_verify(self):
        small_gpt = ModelConfig(
            name="gpt2-small-test", hidden_size=64, num_layers=2,
            num_heads=4, intermediate_size=256, vocab_size=300,
            max_context=64, tie_embeddings=True, gated_mlp=False)
        quant = QuantConfig(weight_group_size=32)
        qw = quantize_model(random_weights(small_gpt, seed=3), quant)
        # Tied model: the head result quantizes the embedding matrix.
        assert qw.lm_head.params.codes.shape == (300, 64)
        report = verify_datapath(qw)
        assert report.passed, report.render()
        # 6 projections per layer (no gate) x 2 layers + head.
        assert report.checked == 2 * 6 + 1

    def test_functional_generation_ungated(self):
        from repro.model.quantized import QuantizedModel

        small_gpt = ModelConfig(
            name="gpt2-small-test", hidden_size=64, num_layers=2,
            num_heads=4, intermediate_size=256, vocab_size=300,
            max_context=32, tie_embeddings=True, gated_mlp=False)
        qw = quantize_model(random_weights(small_gpt, seed=3),
                            QuantConfig(weight_group_size=32))
        tokens = QuantizedModel(qw).generate([1, 2, 3], max_new_tokens=4)
        assert len(tokens) == 4


class TestW8Path:
    def test_w8_layout_roundtrip(self, rng):
        spec = WeightLayoutSpec(weight_bits=8)
        w = rng.standard_normal((16, 256))
        p = quantize_groups(w, 8, 128)
        data = encode_weight_stream(p, spec)
        p2 = decode_weight_stream(data, 16, 256, spec)
        assert np.array_equal(p.codes, p2.codes)
        assert np.array_equal(p.scales, p2.scales)

    def test_w8_verification(self, tiny_weights):
        quant = QuantConfig(weight_bits=8, weight_group_size=32)
        qw = quantize_model(tiny_weights, quant)
        report = verify_datapath(qw)
        assert report.passed, report.render()

    def test_w8_image_twice_the_weights(self, tiny_weights):
        from repro.config import TINY_MODEL

        q4 = QuantConfig(weight_bits=4, weight_group_size=32)
        q8 = QuantConfig(weight_bits=8, weight_group_size=32)
        img4 = build_memory_image(TINY_MODEL, q4, context=64)
        img8 = build_memory_image(TINY_MODEL, q8, context=64)
        # Embedding (FP16) is common; the quantized streams double.
        emb = TINY_MODEL.embedding_params() * 2
        assert (img8.weight_bytes() - emb) == pytest.approx(
            2 * (img4.weight_bytes() - emb), rel=0.1)


class TestSessionEos:
    def test_generation_stops_text_at_eos(self, tiny_qweights):
        """EOS inside the generated ids truncates the decoded text."""
        from repro.runtime.session import InferenceSession

        session = InferenceSession(tiny_qweights, check_capacity=False)
        result = session.generate("x", max_new_tokens=6)
        eos = session.tokenizer.eos_id
        assert eos not in result.tokens
