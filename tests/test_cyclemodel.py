"""Cycle model: the paper's headline decode numbers."""

import pytest

from repro.config import (
    KV260,
    LLAMA2_7B,
    RASPBERRY_PI_4B,
    TINYLLAMA_1_1B,
    W4A16_KV8,
)
from repro.core.cyclemodel import CycleModel
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def cm():
    return CycleModel(LLAMA2_7B, W4A16_KV8, KV260)


class TestHeadlineNumbers:
    def test_decode_speed_at_full_context(self, cm):
        """Paper: ~4.9 token/s."""
        step = cm.decode_step(1023, "fused")
        assert step.tokens_per_s == pytest.approx(4.9, abs=0.15)

    def test_utilization_at_full_context(self, cm):
        """Paper: 84.5% of the bandwidth-bound ceiling."""
        step = cm.decode_step(1023, "fused")
        assert step.utilization == pytest.approx(0.845, abs=0.02)

    def test_decode_speed_around_5(self, cm):
        """Paper abstract: 'around 5 token/s'."""
        for ctx in (128, 512, 1023):
            assert 4.7 < cm.decode_step(ctx).tokens_per_s < 5.4

    def test_utilization_above_80_everywhere(self, cm):
        for ctx in (0, 256, 512, 1023):
            assert cm.decode_step(ctx).utilization > 0.80


class TestModelBehaviour:
    def test_speed_decreases_with_context(self, cm):
        sweep = cm.context_sweep([0, 256, 512, 1023])
        rates = [s.tokens_per_s for s in sweep]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_coarse_mode_slower(self, cm):
        fused = cm.decode_step(512, "fused")
        coarse = cm.decode_step(512, "coarse")
        assert coarse.tokens_per_s < fused.tokens_per_s
        assert coarse.exposed_misc_cycles > fused.exposed_misc_cycles

    def test_average_decode_between_extremes(self, cm):
        avg = cm.average_decode(prompt_len=16, n_tokens=64)
        lo = cm.decode_step(79).tokens_per_s
        hi = cm.decode_step(16).tokens_per_s
        assert lo <= avg.tokens_per_s <= hi

    def test_prefill_scales_with_prompt(self, cm):
        # The simple DOT engine restreams weights per prompt token.
        one = cm.prefill_cycles(1)
        four = cm.prefill_cycles(4)
        assert four == pytest.approx(4 * one, rel=0.02)

    def test_average_rejects_zero_tokens(self, cm):
        with pytest.raises(SimulationError):
            cm.average_decode(0, 0)

    def test_tinyllama_utilization_lower_than_7b(self, cm):
        """Smaller weight streams amortize overheads worse."""
        tiny = CycleModel(TINYLLAMA_1_1B, W4A16_KV8, KV260)
        assert tiny.decode_step(512).utilization < \
            cm.decode_step(512).utilization

    def test_non_fpga_platform_rejected(self):
        with pytest.raises(SimulationError):
            CycleModel(LLAMA2_7B, W4A16_KV8, RASPBERRY_PI_4B)

    def test_transfer_bytes_reported(self, cm):
        step = cm.decode_step(512)
        assert 3.4e9 < step.transfer_bytes < 3.8e9
