"""Float and KV8-quantized caches."""

import numpy as np
import pytest

from repro.config import TINY_MODEL
from repro.errors import SimulationError
from repro.model.kvcache import FloatKVCache, QuantizedKVCache


def _head_vectors(rng):
    return (rng.standard_normal((TINY_MODEL.kv_heads, TINY_MODEL.head_dim)),
            rng.standard_normal((TINY_MODEL.kv_heads, TINY_MODEL.head_dim)))


class TestFloatKVCache:
    def test_append_and_read(self, rng):
        cache = FloatKVCache(TINY_MODEL)
        k, v = _head_vectors(rng)
        for layer in range(TINY_MODEL.num_layers):
            cache.append(layer, k, v, 0)
        assert cache.length == 1
        assert np.array_equal(cache.keys(0, 1)[0], k)
        assert np.array_equal(cache.values(0, 1)[0], v)

    def test_position_out_of_range(self, rng):
        cache = FloatKVCache(TINY_MODEL)
        k, v = _head_vectors(rng)
        with pytest.raises(SimulationError):
            cache.append(0, k, v, TINY_MODEL.max_context)

    def test_length_tracks_last_layer(self, rng):
        cache = FloatKVCache(TINY_MODEL)
        k, v = _head_vectors(rng)
        cache.append(0, k, v, 0)
        assert cache.length == 0  # only advances on the final layer
        cache.append(TINY_MODEL.num_layers - 1, k, v, 0)
        assert cache.length == 1


class TestQuantizedKVCache:
    def test_roundtrip_accuracy(self, rng):
        cache = QuantizedKVCache(TINY_MODEL)
        k, v = _head_vectors(rng)
        cache.append(0, k, v, 0)
        got_k = cache.keys(0, 0, 1).astype(np.float64)[0]
        got_v = cache.values(0, 0, 1).astype(np.float64)[0]
        assert np.max(np.abs(got_k - k[0])) < 0.05
        assert np.max(np.abs(got_v - v[0])) < 0.05

    def test_read_unwritten_slot_raises(self):
        cache = QuantizedKVCache(TINY_MODEL)
        with pytest.raises(SimulationError):
            cache.keys(0, 0, 1)

    def test_payload_bytes(self, rng):
        cache = QuantizedKVCache(TINY_MODEL)
        k, v = _head_vectors(rng)
        for layer in range(TINY_MODEL.num_layers):
            cache.append(layer, k, v, 0)
        expected = 2 * TINY_MODEL.num_layers * TINY_MODEL.kv_dim
        assert cache.payload_bytes() == expected

    def test_pack_bytes(self, rng):
        cache = QuantizedKVCache(TINY_MODEL)
        k, v = _head_vectors(rng)
        for layer in range(TINY_MODEL.num_layers):
            cache.append(layer, k, v, 0)
        expected = 2 * TINY_MODEL.num_layers * TINY_MODEL.kv_heads * 4
        assert cache.pack_bytes() == expected

    def test_multiple_positions(self, rng):
        cache = QuantizedKVCache(TINY_MODEL)
        vectors = []
        for pos in range(4):
            k, v = _head_vectors(rng)
            vectors.append(k)
            for layer in range(TINY_MODEL.num_layers):
                cache.append(layer, k, v, pos)
        keys = cache.keys(0, 0, 4).astype(np.float64)
        for pos in range(4):
            assert np.max(np.abs(keys[pos] - vectors[pos][0])) < 0.05

    def test_kv4_coarser_than_kv8(self, rng):
        k, v = _head_vectors(rng)
        c8 = QuantizedKVCache(TINY_MODEL, kv_bits=8)
        c4 = QuantizedKVCache(TINY_MODEL, kv_bits=4)
        c8.append(0, k, v, 0)
        c4.append(0, k, v, 0)
        e8 = np.abs(c8.keys(0, 0, 1).astype(np.float64)[0] - k[0]).max()
        e4 = np.abs(c4.keys(0, 0, 1).astype(np.float64)[0] - k[0]).max()
        assert e4 > e8
