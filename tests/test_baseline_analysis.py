"""Cross-platform bandwidth analysis (Discussion section)."""

import pytest

from repro.baselines.analysis import (
    bandwidth_for_tokens_per_s,
    ddr5_projection,
    efficiency_frontier,
    max_params_for_capacity,
)
from repro.config import LLAMA2_7B
from repro.errors import ConfigError


def test_bandwidth_for_paper_rate():
    # Inverting the paper's numbers recovers its bandwidth.
    gbps = bandwidth_for_tokens_per_s(LLAMA2_7B, 4.9, utilization=0.845)
    assert gbps == pytest.approx(19.2, rel=0.01)


def test_bandwidth_for_interactive_rate():
    # ~10 token/s needs roughly a DDR5-class interface.
    gbps = bandwidth_for_tokens_per_s(LLAMA2_7B, 10.0)
    assert 35 < gbps < 45


def test_bandwidth_rejects_bad_inputs():
    with pytest.raises(ConfigError):
        bandwidth_for_tokens_per_s(LLAMA2_7B, 0)
    with pytest.raises(ConfigError):
        bandwidth_for_tokens_per_s(LLAMA2_7B, 5, utilization=0)


def test_max_params_4gb_is_about_7b():
    # The paper's point: 4 GB fits a 7B model at 4-bit and ctx 1024 —
    # barely.
    params = max_params_for_capacity(4 * 1024**3)
    assert 6.5e9 < params < 8e9


def test_max_params_scales_with_capacity():
    p4 = max_params_for_capacity(4 * 1024**3)
    p8 = max_params_for_capacity(8 * 1024**3)
    assert p8 == pytest.approx(2 * p4, rel=0.01)


def test_max_params_rejects_zero():
    with pytest.raises(ConfigError):
        max_params_for_capacity(0)


def test_frontier_topped_by_ours():
    frontier = efficiency_frontier()
    assert frontier[0].name == "Ours"
    assert frontier[0].utilization > frontier[1].utilization


def test_frontier_sorted_by_utilization():
    frontier = efficiency_frontier()
    vals = [p.utilization for p in frontier]
    assert vals == sorted(vals, reverse=True)


def test_ddr5_doubles_decode():
    projected = ddr5_projection(LLAMA2_7B, ddr5_gbps=38.4)
    assert projected == pytest.approx(2 * 4.9, rel=0.02)


class TestOversizedModels:
    def test_7b_fits_and_keeps_rate(self):
        from repro.baselines.analysis import oversized_model_rate

        result = oversized_model_rate(6.61, 4 * 1024**3)
        assert result["fits"]
        assert result["tokens_per_s"] == pytest.approx(4.9, abs=0.2)

    def test_13b_collapses_to_storage_speed(self):
        from repro.baselines.analysis import oversized_model_rate

        result = oversized_model_rate(13.0, 4 * 1024**3)
        assert not result["fits"]
        # ~2.4 GB re-read from SD per token: whole seconds per token.
        assert result["tokens_per_s"] < 0.05

    def test_rate_monotone_in_capacity(self):
        from repro.baselines.analysis import oversized_model_rate

        small = oversized_model_rate(13.0, 4 * 1024**3)
        large = oversized_model_rate(13.0, 8 * 1024**3)
        assert large["tokens_per_s"] > small["tokens_per_s"]

    def test_rejects_bad_sizes(self):
        from repro.baselines.analysis import oversized_model_rate

        with pytest.raises(ConfigError):
            oversized_model_rate(0, 1)
