"""The PR 8 observability layer: percentile sketches, columnar step
storage, flight-recorder trace export, and the diffable run store.

The contracts under test:

* :class:`repro.stats.TDigest` answers every percentile query within
  its documented ``rank_error_bound`` of the exact sample (pinned by
  hypothesis against :func:`percentile_of_sorted` and
  :func:`percentile_of_runs`), and merging preserves the bound
  regardless of merge order;
* :class:`repro.obs.ColumnarRecords` is a pure representation — events
  and windows come back out exactly as they went in;
* :class:`repro.obs.FlightRecorder` exports valid Chrome trace-event
  JSON with monotone clocks and balanced B/E spans, by construction,
  including truncated runs and cluster merges;
* the run store round-trips schema-versioned records and
  :func:`diff_records` flags seeded regressions in the right direction.
"""

from __future__ import annotations

import bisect
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import TINY_MODEL, QuantConfig
from repro.engine import (
    ContinuousBatchScheduler,
    CycleModelBackend,
    Request,
    StepEvent,
    StepWindow,
    iter_synthetic_trace,
    synthetic_trace,
)
from repro.errors import ReproError, SimulationError
from repro.obs import (
    ColumnarRecords,
    FlightRecorder,
    RunRecord,
    RunStore,
    diff_records,
    export_chrome_trace,
    median_record,
    merge_chrome_events,
    metric_direction,
    report_metrics,
)
from repro.stats import TDigest, percentile_of_runs, percentile_of_sorted

QUANT32 = QuantConfig(weight_group_size=32)
PERCENTILES = (0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0)


def make_engine(max_batch=4, budget=256, **kwargs):
    backend = CycleModelBackend(TINY_MODEL, QUANT32, n_slots=max_batch)
    return ContinuousBatchScheduler(backend, max_batch=max_batch,
                                    kv_token_budget=budget, **kwargs)


# ---------------------------------------------------------------------------
# t-digest: the documented rank-error bound
# ---------------------------------------------------------------------------


def assert_within_rank_bound(digest, sorted_vals, percentile):
    """The class-docstring contract: some rank consistent with the
    returned value sits within ``rank_error_bound`` of the target.

    A value interpolated strictly between adjacent order statistics has
    a point rank window, so the window is widened by one sample on each
    side — interpolation granularity, not sketch error.  Weighted-mean
    arithmetic can drift a centroid an ulp off its inputs, hence the
    relative tolerance on the bisect keys.
    """
    n = len(sorted_vals)
    value = digest.percentile(percentile)
    tol = 1e-9 * abs(value)
    lo = bisect.bisect_left(sorted_vals, value - tol) - 1
    hi = bisect.bisect_right(sorted_vals, value + tol) + 1
    target = percentile / 100.0 * n
    err = 0.0 if lo <= target <= hi \
        else min(abs(lo - target), abs(hi - target)) / n
    assert err <= digest.rank_error_bound, (
        f"p{percentile}: value {value} has rank window [{lo}, {hi}] "
        f"of {n}, target {target}, err {err} > "
        f"{digest.rank_error_bound}")


class TestTDigestBound:
    @settings(deadline=None, max_examples=40)
    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                     allow_nan=False),
                           min_size=1, max_size=400),
           compression=st.sampled_from((20, 50, 200, 1000)))
    def test_percentiles_within_documented_bound(self, values,
                                                 compression):
        digest = TDigest(compression=compression)
        for v in values:
            digest.add(v)
        ordered = sorted(values)
        for p in PERCENTILES:
            assert_within_rank_bound(digest, ordered, p)

    @settings(deadline=None, max_examples=25)
    @given(runs=st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.integers(1, 50)), min_size=1, max_size=60))
    def test_weighted_runs_match_percentile_of_runs(self, runs):
        """add_run ingests a run-length sample; queries stay within the
        bound of the exact run-length selection."""
        digest = TDigest(compression=500)
        digest.add_run([v for v, _ in runs], [c for _, c in runs])
        expanded = sorted(v for v, c in runs for _ in range(c))
        order = np.argsort([v for v, _ in runs], kind="stable")
        vals = np.asarray([runs[i][0] for i in order])
        cnts = np.asarray([runs[i][1] for i in order])
        for p in PERCENTILES:
            assert_within_rank_bound(digest, expanded, p)
            # percentile_of_runs is the exact oracle the sketch
            # approximates: same answer as expanding the runs.
            assert percentile_of_runs(vals, cnts, p) \
                == percentile_of_sorted(expanded, p)

    def test_min_max_exact(self):
        digest = TDigest(compression=50)
        rng = np.random.default_rng(3)
        sample = rng.normal(size=5000)
        digest.add_array(sample)
        assert digest.percentile(0) == sample.min()
        assert digest.percentile(100) == sample.max()
        assert digest.n == 5000

    def test_bulk_add_array_matches_scalar_adds(self):
        """add_array is only a faster ingestion path: same multiset,
        same bound — and on identical input order, the same centroids."""
        rng = np.random.default_rng(7)
        sample = rng.exponential(size=3000)
        bulk = TDigest(compression=200)
        bulk.add_array(sample, weight=2.0)
        scalar = TDigest(compression=200)
        for v in sample:
            scalar.add(float(v), weight=2.0)
        assert bulk.n == scalar.n == 6000
        ordered = sorted(np.repeat(sample, 2).tolist())
        for p in PERCENTILES:
            assert_within_rank_bound(bulk, ordered, p)
            assert_within_rank_bound(scalar, ordered, p)

    def test_centroid_count_stays_bounded(self):
        """The whole point: memory is O(compression), not O(n)."""
        digest = TDigest(compression=100)
        rng = np.random.default_rng(11)
        digest.add_array(rng.normal(size=100_000))
        assert digest.n_centroids <= 2 * digest.compression

    def test_rank_error_bound_value(self):
        assert TDigest(compression=1000).rank_error_bound \
            == pytest.approx(4 * math.pi / 1000)

    def test_validation_errors(self):
        with pytest.raises(SimulationError):
            TDigest(compression=10)
        digest = TDigest(compression=50)
        with pytest.raises(SimulationError):
            digest.add(1.0, weight=0.0)
        with pytest.raises(SimulationError):
            digest.add_array([1.0], weight=-1.0)
        with pytest.raises(SimulationError):
            digest.percentile(50)  # empty
        digest.add(1.0)
        with pytest.raises(SimulationError):
            digest.percentile(101)


class TestTDigestMerge:
    @settings(deadline=None, max_examples=20)
    @given(parts=st.lists(
        st.lists(st.floats(min_value=-1e4, max_value=1e4,
                           allow_nan=False), max_size=200),
        min_size=3, max_size=3),
        compression=st.sampled_from((50, 300)))
    def test_merge_associative_within_bound(self, parts, compression):
        """(a+b)+c and a+(b+c) need not hold identical centroids, but
        both must answer every query within the bound of the combined
        multiset, and agree exactly on the total weight."""
        combined = sorted(v for part in parts for v in part)
        if not combined:
            return

        def digest_of(values):
            d = TDigest(compression=compression)
            for v in values:
                d.add(v)
            return d

        left = digest_of(parts[0])
        left.merge(digest_of(parts[1]))
        left.merge(digest_of(parts[2]))

        tail = digest_of(parts[1])
        tail.merge(digest_of(parts[2]))
        right = digest_of(parts[0])
        right.merge(tail)

        assert left.n == right.n == len(combined)
        for p in PERCENTILES:
            assert_within_rank_bound(left, combined, p)
            assert_within_rank_bound(right, combined, p)

    def test_merge_empty_is_noop(self):
        digest = TDigest(compression=50)
        digest.add(5.0)
        digest.merge(TDigest(compression=50))
        assert digest.n == 1
        assert digest.percentile(50) == 5.0


# ---------------------------------------------------------------------------
# columnar step storage
# ---------------------------------------------------------------------------


class TestColumnarRecords:
    FREQ = 250e6

    def _mixed_stream(self):
        events = [
            StepEvent(clock_s=0.1, batch=2, cycles=100, admitted=2,
                      preempted=0, retired=0),
            StepEvent(clock_s=0.2, batch=3, cycles=120, admitted=1,
                      preempted=1, retired=0),
        ]
        win_a = StepWindow(clock0_s=0.2, freq_hz=self.FREQ, batch=3,
                           count=4,
                           cycles=np.array([10., 11., 12., 13.]),
                           segments=None)
        win_b = StepWindow(clock0_s=0.9, freq_hz=self.FREQ, batch=3,
                           count=3, cycles=np.array([20., 21., 22.]),
                           segments=((2, 3, 1), (1, 2, 0)))
        tail = StepEvent(clock_s=1.5, batch=1, cycles=90, admitted=0,
                         preempted=0, retired=1)
        return [events[0], events[1], win_a, win_b, tail]

    def _filled(self):
        records = ColumnarRecords(self.FREQ)
        for item in self._mixed_stream():
            if isinstance(item, StepEvent):
                records.append(item)
            else:
                records.append_window(item.clock0_s, item.batch,
                                      item.cycles, item.segments)
        return records

    def test_round_trip_identity(self):
        """Everything appended comes back out unchanged, in order,
        through iteration and random access alike."""
        records = self._filled()
        reference = self._mixed_stream()
        assert len(records) == len(reference)
        assert records.n_events == 3
        assert records.n_windows == 2
        for got, want in zip(records, reference):
            assert type(got) is type(want)
            if isinstance(want, StepEvent):
                assert got == want
            else:
                assert got.clock0_s == want.clock0_s
                assert got.freq_hz == want.freq_hz
                assert got.batch == want.batch
                assert got.count == want.count
                assert got.cycles.tolist() == want.cycles.tolist()
                assert got.segments == want.segments
        for i in range(len(records)):
            got = records[i]
            want = reference[i]
            if isinstance(want, StepEvent):
                assert got == want
            else:
                assert got.cycles.tolist() == want.cycles.tolist()

    def test_window_cycles_are_copies(self):
        """Materialized windows must not pin the underlying buffers —
        appending after a read would otherwise raise BufferError."""
        records = self._filled()
        window = next(r for r in records if isinstance(r, StepWindow))
        _ = window.cycles
        records.append_window(2.0, 1, np.array([5.0]), None)  # no raise
        assert records.n_windows == 3

    def test_n_bytes_tracks_columns(self):
        records = ColumnarRecords(self.FREQ)
        base = records.n_bytes
        records.append_window(0.0, 4, np.arange(100, dtype=np.float64),
                              None)
        assert records.n_bytes > base

    def test_engine_windows_level_uses_columns(self):
        """telemetry='windows' stores records columnar, and the stream
        expands to the identical events of a list-backed full run."""
        kwargs = dict(arrival_rate_rps=800.0, seed=5, prompt_len=(3, 8),
                      decode_len=(4, 24))
        eng_win = make_engine()
        eng_win.run(iter_synthetic_trace(TINY_MODEL, 20, **kwargs),
                    telemetry="windows")
        assert isinstance(eng_win._recorder.records, ColumnarRecords)
        eng_full = make_engine()
        eng_full.run(synthetic_trace(TINY_MODEL, 20, **kwargs))
        assert isinstance(eng_full._recorder.records, list)
        assert eng_win.events == eng_full.events


# ---------------------------------------------------------------------------
# flight recorder + Chrome trace export
# ---------------------------------------------------------------------------


def assert_valid_chrome_trace(payload):
    """Structural validity: parseable, monotone clocks, balanced and
    properly nested B/E per (pid, tid) lane."""
    events = payload["traceEvents"]
    body = [e for e in events if e["ph"] != "M"]
    clocks = [e["ts"] for e in body]
    assert clocks == sorted(clocks), "clocks not monotone"
    stacks: dict = {}
    for event in body:
        lane = (event["pid"], event["tid"])
        stack = stacks.setdefault(lane, [])
        if event["ph"] == "B":
            stack.append(event["name"])
        elif event["ph"] == "E":
            assert stack, f"E without B on lane {lane}: {event}"
            stack.pop()
        else:
            assert event["ph"] == "i"
            assert event["s"] == "t"
    for lane, stack in stacks.items():
        assert not stack, f"unbalanced spans on lane {lane}: {stack}"


class TestFlightRecorder:
    def _traced_run(self, n_requests=40, **engine_kwargs):
        engine = make_engine(**engine_kwargs)
        recorder = FlightRecorder()
        engine.flight = recorder
        report = engine.run(
            iter_synthetic_trace(TINY_MODEL, n_requests,
                                 arrival_rate_rps=2000.0, seed=9,
                                 prompt_len=(3, 8), decode_len=(4, 20)),
            telemetry="summary")
        return report, recorder

    def test_export_round_trip(self, tmp_path):
        report, recorder = self._traced_run()
        path = tmp_path / "trace.json"
        export_chrome_trace(path, recorder)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert_valid_chrome_trace(payload)
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"queued", "prefill", "decode", "retired",
                "step", "window"} <= names

    def test_every_request_retires_once(self):
        report, recorder = self._traced_run(n_requests=25)
        retired = [e for e in recorder.chrome_events()
                   if e["ph"] == "i" and e["name"] == "retired"]
        assert len(retired) == report.n_requests
        # One lane per request, none colliding with the scheduler tid.
        lanes = {e["tid"] for e in retired}
        assert len(lanes) == report.n_requests
        assert 0 not in lanes

    def test_preemption_emits_instant_and_requeue(self):
        """A preempted request drops back to queued: the trace shows
        the preempt instant and a second queued span on its lane."""
        engine = make_engine(max_batch=4, budget=48)
        recorder = FlightRecorder()
        engine.flight = recorder
        report = engine.run(
            synthetic_trace(TINY_MODEL, 8, arrival_rate_rps=1e9, seed=3,
                            prompt_len=(4, 8), decode_len=(16, 32)),
            telemetry="summary")
        assert report.preemptions > 0
        events = recorder.chrome_events()
        preempts = [e for e in events
                    if e["ph"] == "i" and e["name"] == "preempt"]
        assert len(preempts) == report.preemptions
        lane = preempts[0]["tid"]
        queued = [e for e in events if e["tid"] == lane
                  and e["ph"] == "B" and e["name"] == "queued"]
        assert len(queued) >= 2

    def test_open_spans_auto_close(self):
        recorder = FlightRecorder()
        recorder.request_phase(0, "queued", 1.0)
        recorder.request_phase(0, "decode", 2.0)
        recorder.span("step", 2.0, 3.0)
        assert_valid_chrome_trace({"traceEvents":
                                   recorder.chrome_events()})

    def test_abort_emits_terminal_instant_and_balances(self):
        """A request still in flight at export (truncated or aborted
        run) must show up as aborted, not vanish: its open span closes
        at the latest clock and a terminal instant names the phase it
        died in, keeping every lane B/E-balanced."""
        recorder = FlightRecorder()
        recorder.request_phase(0, "queued", 1.0)
        recorder.request_phase(0, "decode", 2.0)
        recorder.request_phase(1, "queued", 2.5)
        recorder.span("step", 2.0, 4.0)
        events = recorder.chrome_events()
        aborted = [e for e in events
                   if e["ph"] == "i" and e["name"] == "aborted"]
        assert {(e["tid"], e["args"]["phase"]) for e in aborted} \
            == {(1, "decode"), (2, "queued")}
        # All terminal events land at the latest observed clock.
        assert {e["ts"] for e in aborted} == {4.0 * 1e6}
        for lane in (1, 2):
            opens = sum(1 for e in events
                        if e["tid"] == lane and e["ph"] == "B")
            closes = sum(1 for e in events
                         if e["tid"] == lane and e["ph"] == "E")
            assert opens == closes
        assert_valid_chrome_trace({"traceEvents": events})

    def test_marker_lands_on_scheduler_track(self):
        recorder = FlightRecorder()
        recorder.marker("crash", 0.5, downtime_s=0.1)
        (event,) = [e for e in recorder.chrome_events()
                    if e["ph"] == "i"]
        assert event["name"] == "crash"
        assert event["tid"] == 0
        assert event["args"] == {"downtime_s": 0.1}

    def test_reset_drops_everything(self):
        recorder = FlightRecorder()
        recorder.request_phase(0, "queued", 1.0)
        recorder.marker("crash", 2.0)
        recorder.reset()
        assert len(recorder) == 0
        assert [e for e in recorder.chrome_events()
                if e["ph"] != "M"] == []

    def test_cluster_merge_keeps_replicas_apart(self, tmp_path):
        recorders = []
        for replica in range(2):
            engine = make_engine()
            recorder = FlightRecorder(replica=replica)
            engine.flight = recorder
            engine.run(synthetic_trace(TINY_MODEL, 10,
                                       arrival_rate_rps=500.0,
                                       seed=replica, prompt_len=(3, 6),
                                       decode_len=(4, 12)),
                       telemetry="summary")
            recorders.append(recorder)
        payload = export_chrome_trace(tmp_path / "cluster.json",
                                      recorders)
        assert_valid_chrome_trace(payload)
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {0, 1}
        merged = merge_chrome_events(recorders)
        assert len(merged) == len(payload["traceEvents"])
        process_names = {e["args"]["name"]
                         for e in payload["traceEvents"]
                         if e["name"] == "process_name"}
        assert process_names == {"replica 0", "replica 1"}

    def test_tracing_off_records_nothing(self):
        engine = make_engine()
        assert engine.flight is None
        engine.run([Request(0, (1, 2), max_new_tokens=4)],
                   telemetry="summary")

    def test_traced_run_leaves_report_unchanged(self):
        """Tracing is pure observation: attaching a recorder must not
        perturb a single simulated observable."""
        kwargs = dict(arrival_rate_rps=900.0, seed=13, prompt_len=(3, 8),
                      decode_len=(4, 20))
        plain = make_engine().run(
            synthetic_trace(TINY_MODEL, 15, **kwargs))
        traced_engine = make_engine()
        traced_engine.flight = FlightRecorder()
        traced = traced_engine.run(
            synthetic_trace(TINY_MODEL, 15, **kwargs))
        assert traced.total_time_s == plain.total_time_s
        assert traced.n_steps == plain.n_steps
        assert traced.total_new_tokens == plain.total_new_tokens
        for ra, rb in zip(traced.results, plain.results):
            assert ra.tokens == rb.tokens
            assert ra.ttft_s == rb.ttft_s


# ---------------------------------------------------------------------------
# run store + diff
# ---------------------------------------------------------------------------


def _report(seed=1, n=12):
    return make_engine().run(
        synthetic_trace(TINY_MODEL, n, arrival_rate_rps=1000.0,
                        seed=seed, prompt_len=(3, 8),
                        decode_len=(4, 16)))


class TestRunStore:
    def test_record_report_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        saved = store.record_report("nightly", _report(),
                                    config={"seed": 1})
        assert saved.run_id == "nightly#0"
        loaded = store.load("nightly")
        assert loaded.run_id == saved.run_id
        assert loaded.metrics == saved.metrics
        assert loaded.config == {"seed": 1}
        assert loaded.schema == "obsrun-v1"
        assert "aggregate_tokens_per_s" in loaded.metrics
        assert "p99_ttft_s" in loaded.metrics

    def test_sequence_ids_and_selectors(self, tmp_path):
        store = RunStore(tmp_path)
        first = store.record_report("lbl", _report(seed=1))
        second = store.record_report("lbl", _report(seed=2))
        assert [r.run_id for r in store.list_runs()] \
            == ["lbl#0", "lbl#1"]
        assert store.load("lbl").run_id == second.run_id
        assert store.load("lbl#0").metrics == first.metrics
        assert store.load(str(tmp_path / "lbl.jsonl")).run_id \
            == second.run_id
        with pytest.raises(ReproError):
            store.load("lbl#7")
        with pytest.raises(ReproError):
            store.load("missing-label")
        with pytest.raises(ReproError):
            store.load(str(tmp_path / "nothing.jsonl"))

    def test_bad_labels_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        for label in ("", "../escape", ".hidden", "a/b"):
            with pytest.raises(ReproError):
                store.record(label, {}, {})

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ReproError, match="schema"):
            RunRecord.from_json({"schema": "obsrun-v99", "run_id": "x#0",
                                 "label": "x"})

    def test_corrupt_lines_skipped_with_warning(self, tmp_path):
        """A poisoned store file — truncated tail, mangled JSON, stale
        schema — must not take ``obs list|show|diff`` down: bad lines
        are skipped with a warning naming the file and line, and every
        intact record still loads."""
        store = RunStore(tmp_path)
        first = store.record_report("lbl", _report(seed=1))
        path = tmp_path / "lbl.jsonl"
        with path.open("a") as fh:
            fh.write("{not json at all\n")                 # mangled
            fh.write(json.dumps({"schema": "obsrun-v99",
                                 "run_id": "lbl#9",
                                 "label": "lbl"}) + "\n")  # stale schema
            fh.write(json.dumps({"schema": "obsrun-v1"}) + "\n")  # short
            fh.write('{"schema": "obsrun-v1", "run_id"\n')  # truncated
        with pytest.warns(RuntimeWarning):
            second = store.record_report("lbl", _report(seed=2))
        with pytest.warns(RuntimeWarning) as caught:
            records = store.list_runs()
        assert [r.run_id for r in records] \
            == [first.run_id, second.run_id]
        assert len(caught) == 4
        assert all("lbl.jsonl" in str(w.message) for w in caught)
        assert any(":2:" in str(w.message) for w in caught)
        # Selectors keep working over the poisoned file too.
        with pytest.warns(RuntimeWarning):
            assert store.load("lbl").run_id == second.run_id

    def test_report_metrics_flattens_tenant_stats(self):
        from repro.engine import TenantSpec

        mix = ((TenantSpec("fg", "interactive"), 0.5),
               (TenantSpec("bg", "best_effort"), 0.5))
        report = make_engine().run(
            synthetic_trace(TINY_MODEL, 16, arrival_rate_rps=1000.0,
                            seed=4, prompt_len=(3, 8),
                            decode_len=(4, 16), tenant_mix=mix))
        metrics, sections = report_metrics(report)
        assert "tenant.interactive.goodput_tokens_per_s" in metrics
        assert "tenant_stats" in sections
        assert "window_stats" in sections


class TestDiffRecords:
    def _pair(self, **overrides):
        base = RunRecord(run_id="a#0", label="a", created_unix=0.0,
                         config={}, metrics={
                             "aggregate_tokens_per_s": 1000.0,
                             "p99_ttft_s": 0.010,
                             "n_requests": 100})
        new_metrics = dict(base.metrics, **overrides)
        new = RunRecord(run_id="a#1", label="a", created_unix=1.0,
                        config={}, metrics=new_metrics)
        return base, new

    def test_identical_records_have_no_flags(self):
        deltas = diff_records(*self._pair())
        assert all(not d.regressed and not d.improved for d in deltas)

    def test_throughput_drop_regresses(self):
        base, new = self._pair(aggregate_tokens_per_s=900.0)
        deltas = {d.key: d for d in diff_records(base, new)}
        assert deltas["aggregate_tokens_per_s"].regressed
        assert not deltas["aggregate_tokens_per_s"].improved

    def test_latency_rise_regresses_and_drop_improves(self):
        base, new = self._pair(p99_ttft_s=0.012)
        assert {d.key: d.regressed
                for d in diff_records(base, new)}["p99_ttft_s"]
        base, new = self._pair(p99_ttft_s=0.008)
        assert {d.key: d.improved
                for d in diff_records(base, new)}["p99_ttft_s"]

    def test_threshold_gates_flagging(self):
        base, new = self._pair(aggregate_tokens_per_s=960.0)  # -4%
        deltas = {d.key: d for d in diff_records(base, new)}
        assert not deltas["aggregate_tokens_per_s"].regressed
        deltas = {d.key: d
                  for d in diff_records(base, new, threshold=0.02)}
        assert deltas["aggregate_tokens_per_s"].regressed

    def test_neutral_metrics_never_flag(self):
        base, new = self._pair(n_requests=1)  # -99%, but undirected
        deltas = {d.key: d for d in diff_records(base, new)}
        assert deltas["n_requests"].direction == 0
        assert not deltas["n_requests"].regressed

    def test_disjoint_metrics_raise(self):
        base = RunRecord("a#0", "a", 0.0, {}, {"x": 1.0})
        new = RunRecord("a#1", "a", 0.0, {}, {"y": 1.0})
        with pytest.raises(ReproError, match="share no"):
            diff_records(base, new)

    def test_direction_registry(self):
        assert metric_direction("aggregate_tokens_per_s") == 1
        assert metric_direction("tenant.fg.goodput_tokens_per_s") == 1
        assert metric_direction("p99_ttft_s") == -1
        assert metric_direction("windows_peak_rss_mb") == -1
        assert metric_direction("n_requests") == 0


class TestBaselineWindow:
    """Satellite: ``obs diff --baseline-window k`` compares against the
    per-metric median of the last ``k`` baseline runs, so a single
    unlucky run in the history cannot decide a regression verdict."""

    def _rec(self, seq, **metrics):
        return RunRecord(run_id=f"b#{seq}", label="b",
                         created_unix=float(seq), config={},
                         metrics=metrics)

    def test_load_window_returns_last_k_oldest_first(self, tmp_path):
        store = RunStore(tmp_path)
        for seed in range(4):
            store.record_report("lbl", _report(seed=seed))
        window = store.load_window("lbl", 3)
        assert [r.run_id for r in window] == ["lbl#1", "lbl#2", "lbl#3"]
        # Oversized windows clamp to what exists; bad k raises.
        assert len(store.load_window("lbl", 99)) == 4
        assert [r.run_id for r in store.load_window("lbl", 1)] \
            == ["lbl#3"]
        with pytest.raises(ReproError):
            store.load_window("lbl", 0)
        with pytest.raises(ReproError):
            store.load_window("missing", 3)
        # A .jsonl path selects the same file as its label.
        assert [r.run_id for r in
                store.load_window(str(tmp_path / "lbl.jsonl"), 2)] \
            == ["lbl#2", "lbl#3"]

    def test_median_record_odd_and_even(self):
        recs = [self._rec(0, x=1.0, n=10), self._rec(1, x=5.0, n=10),
                self._rec(2, x=2.0, n=10)]
        med = median_record(recs)
        assert med.run_id == "b#median[3]"
        assert med.metrics == {"x": 2.0, "n": 10}
        assert med.config["median_of"] == ["b#0", "b#1", "b#2"]
        even = median_record(recs + [self._rec(3, x=4.0, n=10)])
        assert even.metrics["x"] == 3.0  # mean of middle pair (2, 4)

    def test_median_record_drops_partial_metrics(self):
        # A metric missing (or non-numeric) in any record is dropped:
        # medians over mixed telemetry levels would lie.
        recs = [self._rec(0, x=1.0, y=2.0), self._rec(1, x=3.0),
                self._rec(2, x=2.0, y="full")]
        assert set(median_record(recs).metrics) == {"x"}

    def test_median_record_edge_sizes(self):
        single = self._rec(0, x=1.0)
        assert median_record([single]) is single
        with pytest.raises(ReproError):
            median_record([])

    def test_diff_tolerates_one_outlier_baseline(self):
        # Runs 0 and 2 agree; run 1 is a 2x outlier.  The median
        # baseline sides with the majority, so the steady candidate
        # does not regress.
        window = [self._rec(0, aggregate_tokens_per_s=1000.0),
                  self._rec(1, aggregate_tokens_per_s=2000.0),
                  self._rec(2, aggregate_tokens_per_s=1010.0)]
        cand = self._rec(9, aggregate_tokens_per_s=990.0)
        against_outlier = {d.key: d
                           for d in diff_records(window[1], cand)}
        assert against_outlier["aggregate_tokens_per_s"].regressed
        against_median = {d.key: d for d in
                          diff_records(median_record(window), cand)}
        assert not against_median["aggregate_tokens_per_s"].regressed


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestObsCli:
    def run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_serve_record_trace_then_diff(self, capsys, tmp_path):
        """The whole loop: record two runs and a trace via serve-sim,
        list and show them, then diff — including a seeded regression
        that must flip the exit code."""
        runs = str(tmp_path / "runs")
        trace = tmp_path / "trace.json"
        for _ in range(2):  # same seed: the diff below must be clean
            code, out = self.run(
                capsys, "serve-sim", "--requests", "30", "--seed", "0",
                "--telemetry", "sketch", "--record", "ci",
                "--runs-dir", runs, "--trace-out", str(trace))
            assert code == 0
            assert "run record" in out
        assert_valid_chrome_trace(json.loads(trace.read_text()))

        code, out = self.run(capsys, "obs", "list", "--runs-dir", runs)
        assert code == 0
        assert "ci#0" in out and "ci#1" in out

        code, out = self.run(capsys, "obs", "show", "ci#0",
                             "--runs-dir", runs)
        assert code == 0
        assert "aggregate_tokens_per_s" in out

        code, out = self.run(capsys, "obs", "diff", "ci#0", "ci#1",
                             "--runs-dir", runs)
        assert code == 0
        assert "no regressions" in out

        # Seed a >5% goodput drop into a copy of the latest record.
        path = tmp_path / "runs" / "ci.jsonl"
        record = json.loads(path.read_text().splitlines()[-1])
        record["run_id"] = "ci#2"
        record["metrics"]["aggregate_tokens_per_s"] *= 0.9
        with path.open("a") as fh:
            fh.write(json.dumps(record) + "\n")
        code, out = self.run(capsys, "obs", "diff", "ci#0", "ci#2",
                             "--runs-dir", runs)
        assert code == 1
        assert "REGRESSED" in out
        assert "aggregate_tokens_per_s" in out

    def test_diff_baseline_window_cli(self, capsys, tmp_path):
        runs = str(tmp_path / "runs")
        for seed in ("0", "1", "2"):
            code, _ = self.run(
                capsys, "serve-sim", "--requests", "20", "--seed",
                seed, "--record", "base", "--runs-dir", runs)
            assert code == 0
        code, _ = self.run(
            capsys, "serve-sim", "--requests", "20", "--seed", "3",
            "--record", "cand", "--runs-dir", runs)
        assert code == 0
        code, out = self.run(capsys, "obs", "diff", "base", "cand",
                             "--baseline-window", "3", "--threshold",
                             "5", "--runs-dir", runs)
        assert code == 0
        assert "base#median[3]" in out

    def test_sketch_telemetry_level(self, capsys):
        code, out = self.run(capsys, "serve-sim", "--requests", "12",
                             "--telemetry", "sketch")
        assert code == 0
        assert "token lat p99" in out

    def test_per_request_rejects_sketch(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve-sim", "--requests", "4", "--telemetry",
                  "sketch", "--per-request"])
