"""Core hardware units: FIFO, dequantizer, VPU, SPU, MCU."""

import numpy as np
import pytest

from repro.core.dequant import Dequantizer
from repro.core.fifo import HardwareFifo
from repro.core.mcu import Mcu
from repro.core.spu import SpuModel
from repro.core.vpu import DotEngine, VpuSpec
from repro.errors import ConfigError, LayoutError, SimulationError
from repro.quant.groupquant import pack_codes


class TestFifo:
    def test_push_pop_order(self):
        f = HardwareFifo("t", 4)
        f.push(1)
        f.push(2)
        assert f.pop() == 1
        assert f.pop() == 2

    def test_overflow_raises(self):
        f = HardwareFifo("t", 1)
        f.push(1)
        with pytest.raises(SimulationError):
            f.push(2)

    def test_underflow_raises(self):
        with pytest.raises(SimulationError):
            HardwareFifo("t", 1).pop()

    def test_peak_occupancy(self):
        f = HardwareFifo("t", 8)
        for i in range(5):
            f.push(i)
        f.pop()
        assert f.peak_occupancy == 5

    def test_drain(self):
        f = HardwareFifo("t", 4)
        f.push("a")
        f.push("b")
        assert f.drain() == ["a", "b"]
        assert f.empty

    def test_zero_depth_rejected(self):
        with pytest.raises(SimulationError):
            HardwareFifo("t", 0)


class TestDequantizer:
    def test_word_to_128_fp16(self, rng):
        dq = Dequantizer()
        codes = rng.integers(0, 16, 128).astype(np.uint8)
        word = pack_codes(codes, 4)
        out = dq.dequantize_word(word, scale=0.5, zero=8)
        assert out.shape == (128,)
        assert out.dtype == np.float16
        expected = (codes.astype(np.float64) - 8) * np.float16(0.5)
        assert np.allclose(out.astype(np.float64), expected, atol=1e-3)

    def test_wrong_word_size_rejected(self):
        with pytest.raises(LayoutError):
            Dequantizer().dequantize_word(b"\x00" * 32, 1.0, 0)

    def test_lane_width_must_fill_bus(self):
        with pytest.raises(LayoutError):
            Dequantizer(lanes=64, weight_bits=4)

    def test_8bit_variant(self, rng):
        dq = Dequantizer(lanes=64, weight_bits=8)
        codes = rng.integers(0, 256, 64).astype(np.uint8)
        out = dq.dequantize_word(pack_codes(codes, 8), 1.0, 128)
        assert out.shape == (64,)

    def test_counts_words(self, rng):
        dq = Dequantizer()
        word = pack_codes(np.zeros(128, dtype=np.uint8), 4)
        dq.dequantize_word(word, 1.0, 0)
        dq.dequantize_word(word, 1.0, 0)
        assert dq.words_processed == 2


class TestDotEngine:
    def test_matvec_cycles(self):
        eng = DotEngine()
        # 4096x4096 GEMV: 4096 rows x 32 tiles.
        assert eng.matvec_cycles(4096, 4096) == 4096 * 32

    def test_dot_cycles(self):
        eng = DotEngine()
        assert eng.dot_cycles(128) == 1
        assert eng.dot_cycles(129) == 2
        assert eng.dot_cycles(1) == 1

    def test_functional_matches_fp16_matvec(self, rng):
        from repro.numerics.fp16 import fp16_matvec

        eng = DotEngine()
        w = rng.standard_normal((8, 256))
        x = rng.standard_normal(256)
        assert np.array_equal(eng.matvec(w, x), fp16_matvec(w, x, 128))

    def test_bandwidth_matched_consumption(self):
        # 128 lanes x 4-bit weights = 64 bytes/cycle = the bus rate.
        spec = VpuSpec()
        assert spec.stream_bytes_per_cycle(4) == 64

    def test_rejects_non_power_of_two_lanes(self):
        with pytest.raises(ConfigError):
            VpuSpec(lanes=100)

    def test_rejects_bad_matvec_dims(self):
        with pytest.raises(ConfigError):
            DotEngine().matvec_cycles(0, 128)


class TestSpuModel:
    def test_softmax_is_three_passes(self):
        spu = SpuModel()
        assert spu.softmax_cycles(100) == 3 * 100 + spu.params.softmax_depth

    def test_rmsnorm_pass_count(self):
        spu = SpuModel()
        free = spu.rmsnorm_cycles(4096, square_sum_free=True)
        full = spu.rmsnorm_cycles(4096, square_sum_free=False)
        assert full - free == 4096

    def test_rope_covers_half_pairs(self):
        spu = SpuModel()
        assert spu.rope_cycles(128) == 64 + spu.params.rope_depth

    def test_quant_two_passes(self):
        spu = SpuModel()
        assert spu.quant_cycles(128) == 256 + spu.params.quant_depth

    def test_silu_single_pass(self):
        spu = SpuModel()
        assert spu.silu_cycles(11008) == 11008 + spu.params.silu_depth

    def test_rejects_nonpositive_lengths(self):
        with pytest.raises(ConfigError):
            SpuModel().softmax_cycles(0)


class TestMcu:
    def test_large_stream_near_axi_rate(self):
        mcu = Mcu()
        report = mcu.stream_transfer(64 << 20)
        assert report.cycles / report.axi_cycles < 1.06

    def test_ddr_bound_for_big_contiguous(self):
        report = Mcu().stream_transfer(1 << 20)
        assert report.ddr_bound  # DDR overhead always exceeds raw AXI time

    def test_scattered_much_slower(self):
        mcu = Mcu()
        stream = mcu.stream_transfer(1 << 16).cycles
        scattered = mcu.scattered_transfer(1 << 10, 64).cycles
        assert scattered > 5 * stream

    def test_streaming_efficiency_in_range(self):
        eff = Mcu().streaming_efficiency()
        assert 0.9 < eff < 1.0

    def test_zero_bytes_rejected(self):
        with pytest.raises(SimulationError):
            Mcu().stream_transfer(0)

    def test_bytes_moved_accumulates(self):
        mcu = Mcu()
        mcu.stream_transfer(1000)
        mcu.stream_transfer(2000)
        assert mcu.bytes_moved == 3000
