"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_info_headline(capsys):
    code, out = run(capsys, "info", "--context", "1023")
    assert code == 0
    assert "5.8" in out          # theoretical ceiling
    assert "84" in out           # utilization percent
    assert "6.5" in out or "6.6" in out  # watts


def test_info_unknown_model_exits():
    with pytest.raises(SystemExit):
        main(["info", "--model", "GPT-9000"])


def test_tables(capsys):
    code, out = run(capsys, "tables", "--context", "512")
    assert code == 0
    for token in ("Table I", "Table II", "Table III", "FlightLLM",
                  "NanoLLM", "KV260"):
        assert token in out


def test_capacity_fits(capsys):
    code, out = run(capsys, "capacity", "--model", "LLaMA2-7B",
                    "--context", "1024")
    assert code == 0
    assert "FITS" in out
    assert "93" in out


def test_capacity_w8_fails(capsys):
    code, out = run(capsys, "capacity", "--model", "LLaMA2-7B",
                    "--weight-bits", "8")
    assert code == 1
    assert "DOES NOT FIT" in out


def test_sweep(capsys):
    code, out = run(capsys, "sweep", "--context", "256", "--steps", "4")
    assert code == 0
    lines = [l for l in out.splitlines() if l and l[0].isspace() is False]
    assert any("token/s" in l for l in out.splitlines())


def test_sweep_coarse_mode(capsys):
    code, out = run(capsys, "sweep", "--context", "128", "--steps", "2",
                    "--mode", "coarse")
    assert code == 0
    assert "coarse" in out


def test_explore(capsys):
    code, out = run(capsys, "explore", "--context", "128")
    assert code == 0
    assert "pareto" in out
    assert "128" in out


def test_generate(capsys):
    code, out = run(capsys, "generate", "--tokens", "4")
    assert code == 0
    assert "completion" in out
    assert "token/s" in out


def test_generate_sampled(capsys):
    code, out = run(capsys, "generate", "--tokens", "4",
                    "--temperature", "0.9")
    assert code == 0


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_summary_holds(capsys):
    code, out = run(capsys, "summary")
    assert code == 0
    assert "HOLDS" in out
    assert out.count("True") >= 10
    assert "False" not in out


def test_convert_roundtrip(capsys, tmp_path):
    out = str(tmp_path / "tiny.ckpt")
    code = main(["convert", "--out", out])
    text = capsys.readouterr().out
    assert code == 0
    assert "CRCs OK" in text
    import os

    assert os.path.getsize(out) > 1000
