"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_info_headline(capsys):
    code, out = run(capsys, "info", "--context", "1023")
    assert code == 0
    assert "5.8" in out          # theoretical ceiling
    assert "84" in out           # utilization percent
    assert "6.5" in out or "6.6" in out  # watts


def test_info_unknown_model_exits():
    with pytest.raises(SystemExit):
        main(["info", "--model", "GPT-9000"])


def test_tables(capsys):
    code, out = run(capsys, "tables", "--context", "512")
    assert code == 0
    for token in ("Table I", "Table II", "Table III", "FlightLLM",
                  "NanoLLM", "KV260"):
        assert token in out


def test_capacity_fits(capsys):
    code, out = run(capsys, "capacity", "--model", "LLaMA2-7B",
                    "--context", "1024")
    assert code == 0
    assert "FITS" in out
    assert "93" in out


def test_capacity_w8_fails(capsys):
    code, out = run(capsys, "capacity", "--model", "LLaMA2-7B",
                    "--weight-bits", "8")
    assert code == 1
    assert "DOES NOT FIT" in out


def test_sweep(capsys):
    code, out = run(capsys, "sweep", "--context", "256", "--steps", "4")
    assert code == 0
    lines = [l for l in out.splitlines() if l and l[0].isspace() is False]
    assert any("token/s" in l for l in out.splitlines())


def test_sweep_coarse_mode(capsys):
    code, out = run(capsys, "sweep", "--context", "128", "--steps", "2",
                    "--mode", "coarse")
    assert code == 0
    assert "coarse" in out


def test_explore(capsys):
    code, out = run(capsys, "explore", "--context", "128")
    assert code == 0
    assert "pareto" in out
    assert "128" in out


def test_generate(capsys):
    code, out = run(capsys, "generate", "--tokens", "4")
    assert code == 0
    assert "completion" in out
    assert "token/s" in out


def test_generate_sampled(capsys):
    code, out = run(capsys, "generate", "--tokens", "4",
                    "--temperature", "0.9")
    assert code == 0


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_summary_holds(capsys):
    code, out = run(capsys, "summary")
    assert code == 0
    assert "HOLDS" in out
    assert out.count("True") >= 10
    assert "False" not in out


def test_serve_sim_cycle_backend(capsys):
    code, out = run(capsys, "serve-sim", "--requests", "10",
                    "--max-batch", "8", "--per-request")
    assert code == 0
    assert "aggregate rate" in out
    assert "token lat p99" in out
    assert out.count("length") == 10  # every request retires


def test_serve_sim_functional_backend(capsys):
    code, out = run(capsys, "serve-sim", "--backend", "functional",
                    "--requests", "4", "--max-batch", "4",
                    "--decode-max", "8")
    assert code == 0
    assert "functional backend" in out


def test_serve_sim_analytical_7b(capsys):
    code, out = run(capsys, "serve-sim", "--model", "LLaMA2-7B",
                    "--backend", "analytical", "--requests", "3",
                    "--arrival-rate", "0.5", "--decode-max", "8")
    assert code == 0
    assert "LLaMA2-7B" in out


def test_serve_sim_kv_budget_forces_preemption(capsys):
    code, out = run(capsys, "serve-sim", "--requests", "8",
                    "--max-batch", "4", "--kv-budget", "60",
                    "--decode-min", "20", "--decode-max", "30",
                    "--prompt-min", "10", "--prompt-max", "14")
    assert code == 0
    assert "KV budget 60 tokens" in out
    preemptions = int(out.split("preemptions")[1].split()[0])
    assert preemptions > 0


def test_serve_sim_functional_rejects_big_models():
    with pytest.raises(SystemExit):
        main(["serve-sim", "--model", "LLaMA2-7B",
              "--backend", "functional"])


def test_bench_serve_amortization_visible(capsys):
    code, out = run(capsys, "bench-serve", "--max-batch", "8")
    assert code == 0
    assert "VISIBLE" in out
    lines = [l for l in out.splitlines() if l.strip()
             and l.strip()[0].isdigit()]
    rates = [float(l.split()[1]) for l in lines]
    assert len(rates) == 4  # batch 1, 2, 4, 8
    assert all(r > rates[0] for r in rates[1:])


def test_bench_serve_rejects_batch_below_two():
    with pytest.raises(SystemExit):
        main(["bench-serve", "--max-batch", "1"])


def test_bench_serve_wider_engine(capsys):
    code, out = run(capsys, "bench-serve", "--max-batch", "4",
                    "--lanes", "512")
    assert code == 0
    assert "512 lanes" in out


def test_serve_sim_paged_kv_reports_reuse(capsys):
    code, out = run(capsys, "serve-sim", "--kv", "paged",
                    "--block-size", "8", "--requests", "8",
                    "--shared-prefix", "24", "--decode-max", "8")
    assert code == 0
    assert "paged KV" in out
    assert "prefix reuse" in out
    reused = int(out.split("prefix reuse   :")[1].split()[0])
    assert reused > 0


def test_serve_sim_paged_functional_backend(capsys):
    code, out = run(capsys, "serve-sim", "--kv", "paged",
                    "--backend", "functional", "--requests", "4",
                    "--max-batch", "4", "--shared-prefix", "16",
                    "--decode-min", "4", "--decode-max", "6")
    assert code == 0
    assert "paged KV" in out


def test_serve_sim_paged_kv_budget_sizes_pool(capsys):
    code, out = run(capsys, "serve-sim", "--kv", "paged",
                    "--block-size", "8", "--kv-budget", "128",
                    "--requests", "6", "--decode-max", "8")
    assert code == 0
    assert "16 blocks x 8 tokens" in out


def test_bench_serve_kv_compare_paged_wins(capsys):
    code, out = run(capsys, "bench-serve", "--model", "tiny-test",
                    "--group-size", "32", "--max-batch", "8",
                    "--kv-compare", "--kv-budget", "192",
                    "--shared-prefix", "32", "--requests", "12",
                    "--block-size", "16", "--context", "48")
    assert code == 0
    assert "paged KV WINS" in out


def test_convert_roundtrip(capsys, tmp_path):
    out = str(tmp_path / "tiny.ckpt")
    code = main(["convert", "--out", out])
    text = capsys.readouterr().out
    assert code == 0
    assert "CRCs OK" in text
    import os

    assert os.path.getsize(out) > 1000
