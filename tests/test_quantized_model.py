"""Hardware-equivalent functional model vs the float reference."""

import numpy as np
import pytest

from repro.config import TINY_MODEL
from repro.errors import SimulationError
from repro.model.kvcache import QuantizedKVCache
from repro.model.llama import ReferenceModel
from repro.model.quantized import QuantizedModel


@pytest.fixture(scope="module")
def ref_and_hw(tiny_weights, tiny_qweights):
    return ReferenceModel(tiny_weights), QuantizedModel(tiny_qweights)


def test_logits_strongly_correlated(ref_and_hw):
    ref, hw = ref_and_hw
    prompt = [256, 10, 20, 30]
    lr, _ = ref.prefill(prompt)
    lh, _ = hw.prefill(prompt)
    corr = np.corrcoef(lr, lh.astype(np.float64))[0, 1]
    assert corr > 0.9


def test_reference_argmax_ranks_high_in_hw_logits(ref_and_hw):
    # Random tiny models have near-tied logits, so exact argmax equality
    # is not a sound requirement; the reference's greedy pick must still
    # sit at the top of the quantized model's ranking.
    ref, hw = ref_and_hw
    prompt = [256, 72, 105]
    lr, _ = ref.prefill(prompt)
    lh, _ = hw.prefill(prompt)
    top5_hw = set(np.argsort(np.asarray(lh, np.float64))[-5:])
    assert int(np.argmax(lr)) in top5_hw


def test_generation_runs_and_is_deterministic(ref_and_hw):
    _, hw = ref_and_hw
    a = hw.generate([256, 1, 2], max_new_tokens=5)
    b = hw.generate([256, 1, 2], max_new_tokens=5)
    assert a == b
    assert len(a) == 5
    assert all(0 <= t < TINY_MODEL.vocab_size for t in a)


def test_logits_are_fp16(ref_and_hw):
    _, hw = ref_and_hw
    logits, _ = hw.prefill([1])
    assert logits.dtype == np.float16


def test_empty_prompt_raises(ref_and_hw):
    _, hw = ref_and_hw
    with pytest.raises(SimulationError):
        hw.prefill([])


def test_invalid_token_raises(ref_and_hw):
    _, hw = ref_and_hw
    cache = QuantizedKVCache(TINY_MODEL)
    with pytest.raises(SimulationError):
        hw.forward_token(-1, cache, 0)


def test_kv_cache_gets_populated(ref_and_hw):
    _, hw = ref_and_hw
    _, cache = hw.prefill([1, 2, 3])
    assert cache.length == 3


def test_decode_extends_cache(ref_and_hw):
    _, hw = ref_and_hw
    logits, cache = hw.prefill([1, 2])
    hw.decode_step(int(np.argmax(logits)), cache, 2)
    assert cache.length == 3


def test_hidden_states_bounded(ref_and_hw):
    """FP16 pipeline must not overflow on typical activations."""
    _, hw = ref_and_hw
    logits, _ = hw.prefill(list(range(10)))
    assert np.all(np.isfinite(logits.astype(np.float64)))
    assert np.abs(logits.astype(np.float64)).max() < 1e4
