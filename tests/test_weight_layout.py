"""Interleaved weight arrangement format (Fig. 4A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.memory.ddr import DdrModel
from repro.packing.weight_layout import (
    WeightLayoutSpec,
    decode_weight_stream,
    encode_weight_stream,
    interleaved_read_transactions,
    naive_read_transactions,
)
from repro.quant.groupquant import quantize_groups


@pytest.fixture(scope="module")
def spec():
    return WeightLayoutSpec()


class TestSpec:
    def test_superblock_geometry(self, spec):
        # 512-bit bus, 8-bit zeros: 64 groups per superblock.
        assert spec.groups_per_superblock == 64
        assert spec.zero_beats == 1
        assert spec.scale_beats == 2  # 64 x 16-bit scales
        assert spec.weight_beats_per_group == 1  # 128 x 4-bit weights
        assert spec.superblock_beats == 1 + 2 + 64

    def test_superblock_bytes(self, spec):
        assert spec.superblock_bytes == 67 * 64

    def test_stream_bytes_pads_partial_blocks(self, spec):
        assert spec.stream_bytes(1) == spec.superblock_bytes
        assert spec.stream_bytes(64) == spec.superblock_bytes
        assert spec.stream_bytes(65) == 2 * spec.superblock_bytes

    def test_overhead_fraction(self, spec):
        # 3 metadata beats per 64 code beats.
        assert spec.overhead_fraction() == pytest.approx(3 / 64)

    def test_rejects_non_dividing_widths(self):
        with pytest.raises(LayoutError):
            WeightLayoutSpec(zero_bits=7)

    def test_8bit_weight_variant(self):
        spec8 = WeightLayoutSpec(weight_bits=8)
        assert spec8.weight_beats_per_group == 2  # 128 x 8-bit = 2 beats


class TestRoundtrip:
    def test_exact_roundtrip(self, rng, spec):
        w = rng.standard_normal((48, 256))
        p = quantize_groups(w, 4, 128)
        data = encode_weight_stream(p, spec)
        p2 = decode_weight_stream(data, 48, 256, spec)
        assert np.array_equal(p.codes, p2.codes)
        assert np.array_equal(p.scales, p2.scales)
        assert np.array_equal(p.zeros, p2.zeros)

    def test_roundtrip_partial_superblock(self, rng, spec):
        # 10 rows x 1 group = 10 groups: far less than one superblock.
        w = rng.standard_normal((10, 128))
        p = quantize_groups(w, 4, 128)
        data = encode_weight_stream(p, spec)
        assert len(data) == spec.superblock_bytes
        p2 = decode_weight_stream(data, 10, 128, spec)
        assert np.array_equal(p.codes, p2.codes)

    def test_stream_is_beat_aligned(self, rng, spec):
        p = quantize_groups(rng.standard_normal((16, 128)), 4, 128)
        assert len(encode_weight_stream(p, spec)) % spec.bus_bytes == 0

    def test_mismatched_bits_rejected(self, rng, spec):
        p = quantize_groups(rng.standard_normal((4, 128)), 8, 128)
        with pytest.raises(LayoutError):
            encode_weight_stream(p, spec)

    def test_decode_wrong_length_rejected(self, spec):
        with pytest.raises(LayoutError):
            decode_weight_stream(b"\x00" * 64, 4, 128, spec)

    def test_decode_indivisible_features_rejected(self, spec):
        with pytest.raises(LayoutError):
            decode_weight_stream(b"", 4, 100, spec)

    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, rows, groups_per_row, seed):
        rng = np.random.default_rng(seed)
        spec = WeightLayoutSpec()
        w = rng.standard_normal((rows, groups_per_row * 128))
        p = quantize_groups(w, 4, 128)
        data = encode_weight_stream(p, spec)
        p2 = decode_weight_stream(data, rows, groups_per_row * 128, spec)
        assert np.array_equal(p.codes, p2.codes)
        assert np.array_equal(p.scales, p2.scales)
        assert np.array_equal(p.zeros, p2.zeros)


class TestTransactionStreams:
    def test_interleaved_is_few_large_bursts(self, spec):
        txns = interleaved_read_transactions(4096, spec=spec)
        assert len(txns) <= 2
        assert all(t.size >= 1 << 18 for t in txns[:-1] or txns)

    def test_naive_is_many_small_transactions(self, spec):
        txns = naive_read_transactions(64, spec=spec)
        assert len(txns) == 3 * 64
        assert min(t.size for t in txns) <= 2

    def test_interleaved_beats_naive_on_ddr(self, spec):
        """The Fig. 4A claim, quantified on the DDR model."""
        n_groups = 2048
        inter = DdrModel()
        inter.run(interleaved_read_transactions(n_groups, spec=spec))
        naive = DdrModel()
        naive.run(naive_read_transactions(n_groups, spec=spec))
        assert inter.efficiency() > 0.9
        assert naive.efficiency() < 0.5
        assert inter.efficiency() / naive.efficiency() > 2
