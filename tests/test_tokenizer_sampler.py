"""Byte tokenizer and samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.model.sampler import Sampler
from repro.model.tokenizer import ByteTokenizer


class TestByteTokenizer:
    def test_roundtrip_ascii(self):
        tok = ByteTokenizer()
        assert tok.decode(tok.encode("hello FPGA")) == "hello FPGA"

    def test_roundtrip_unicode(self):
        tok = ByteTokenizer()
        text = "大语言模型 ünïcode ✓"
        assert tok.decode(tok.encode(text)) == text

    def test_bos_prepended(self):
        tok = ByteTokenizer()
        ids = tok.encode("a")
        assert ids[0] == tok.bos_id
        assert ids[1] == ord("a")

    def test_no_bos_option(self):
        tok = ByteTokenizer()
        assert tok.encode("a", add_bos=False) == [ord("a")]

    def test_eos_appended(self):
        tok = ByteTokenizer()
        assert tok.encode("a", add_eos=True)[-1] == tok.eos_id

    def test_specials_dropped_on_decode(self):
        tok = ByteTokenizer()
        assert tok.decode([tok.bos_id, ord("x"), tok.eos_id]) == "x"

    def test_out_of_vocab_id_raises(self):
        tok = ByteTokenizer()
        with pytest.raises(ConfigError):
            tok.decode([500])

    def test_padding_ids_are_dropped(self):
        # A synthetic model with a padded vocabulary may emit non-byte ids
        # below vocab_size; they decode to nothing.
        tok = ByteTokenizer(vocab_size=272)
        assert tok.decode([ord("a"), 266, ord("b")]) == "ab"

    def test_too_small_vocab_rejected(self):
        with pytest.raises(ConfigError):
            ByteTokenizer(vocab_size=100)

    @given(st.text(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, text):
        tok = ByteTokenizer()
        assert tok.decode(tok.encode(text)) == text


class TestSampler:
    def test_greedy_is_argmax(self, rng):
        logits = rng.standard_normal(100)
        assert Sampler().sample(logits) == int(np.argmax(logits))

    def test_temperature_zero_deterministic(self, rng):
        logits = rng.standard_normal(50)
        s = Sampler(temperature=0.0)
        assert len({s.sample(logits) for _ in range(5)}) == 1

    def test_seeded_reproducibility(self, rng):
        logits = rng.standard_normal(50)
        a = Sampler(temperature=1.0, seed=42)
        b = Sampler(temperature=1.0, seed=42)
        assert [a.sample(logits) for _ in range(10)] == \
            [b.sample(logits) for _ in range(10)]

    def test_top_k_restricts_support(self, rng):
        logits = rng.standard_normal(100)
        top3 = set(np.argsort(logits)[-3:])
        s = Sampler(temperature=1.0, top_k=3, seed=0)
        for _ in range(50):
            assert s.sample(logits) in top3

    def test_top_p_restricts_support(self):
        # One dominant logit: nucleus of p=0.5 is just that token.
        logits = np.array([10.0, 0.0, 0.0, 0.0])
        s = Sampler(temperature=1.0, top_p=0.5, seed=0)
        for _ in range(20):
            assert s.sample(logits) == 0

    def test_high_temperature_spreads(self, rng):
        logits = np.zeros(10)
        logits[3] = 1.0
        s = Sampler(temperature=100.0, seed=0)
        seen = {s.sample(logits) for _ in range(200)}
        assert len(seen) > 5  # near-uniform at huge temperature

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            Sampler(temperature=-1)
        with pytest.raises(ConfigError):
            Sampler(top_k=-1)
        with pytest.raises(ConfigError):
            Sampler(top_p=0.0)

    def test_empty_logits_rejected(self):
        with pytest.raises(ConfigError):
            Sampler().sample(np.array([]))
