"""Multi-tenant serving: priority classes, KV quotas, admission control.

The contract under test: tenancy is *scheduling policy only* — every
fast-forward tier reproduces the eager loop bit for bit on mixed-tenant
traces; priority never inverts in victim selection; per-tenant quota
accounting never leaks a token; rejected work drains into the report
instead of aborting the run; and a default-tenant run is
indistinguishable from the pre-tenancy scheduler.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ReplicaRouter, ShardedCycleBackend
from repro.config import TINY_MODEL, QuantConfig
from repro.engine import (
    DEFAULT_TENANT,
    PRIORITY_CLASSES,
    AnalyticalBackend,
    ContinuousBatchScheduler,
    CycleModelBackend,
    FinishReason,
    Request,
    TenantSpec,
    iter_synthetic_trace,
    synthetic_trace,
)
from repro.errors import CapacityError, SimulationError

QUANT32 = QuantConfig(weight_group_size=32)
BLOCK_SIZE = 8
BUDGET_TOKENS = 128
MAX_BATCH = 4

FG = TenantSpec("fg", "interactive")
BULK = TenantSpec("bulk", "batch", kv_quota_tokens=64)
BG = TenantSpec("bg", "best_effort", kv_quota_tokens=48)
MIX = ((FG, 0.3), (BULK, 0.5), (BG, 0.2))


def make_engine(kind, kv_mode, tp=1, ff=True, max_batch=MAX_BATCH,
                budget=BUDGET_TOKENS):
    kv = dict(kv_mode=kv_mode, block_size=BLOCK_SIZE,
              n_kv_blocks=budget // BLOCK_SIZE)
    if tp > 1:
        backend = ShardedCycleBackend(TINY_MODEL, QUANT32, tp=tp,
                                      n_slots=max_batch, **kv)
    else:
        cls = CycleModelBackend if kind == "cycle" else AnalyticalBackend
        backend = cls(TINY_MODEL, QUANT32, n_slots=max_batch, **kv)
    token_budget = budget if kv_mode == "slotted" else None
    return ContinuousBatchScheduler(backend, max_batch=max_batch,
                                    kv_token_budget=token_budget,
                                    fast_forward=ff)


def assert_reports_identical(a, b):
    assert a.total_time_s == b.total_time_s
    assert a.n_steps == b.n_steps
    assert a.preemptions == b.preemptions
    assert a.max_batch_observed == b.max_batch_observed
    assert a.n_requests == b.n_requests
    assert a.total_new_tokens == b.total_new_tokens
    assert a.tenant_stats == b.tenant_stats
    for ra, rb in zip(a.results, b.results):
        assert ra.request_id == rb.request_id
        assert tuple(ra.tokens) == tuple(rb.tokens)
        assert ra.decode_step_s == rb.decode_step_s
        assert ra.ttft_s == rb.ttft_s
        assert ra.e2e_s == rb.e2e_s
        assert ra.finish_reason == rb.finish_reason
        assert ra.preemptions == rb.preemptions
        assert ra.tenant_class == rb.tenant_class


class TestTenantSpec:
    def test_default_tenant_is_quota_free_batch(self):
        assert DEFAULT_TENANT.priority == "batch"
        assert not DEFAULT_TENANT.has_quota
        assert Request(0, (1, 2), 4).tenant is DEFAULT_TENANT

    def test_ranks_follow_priority_order(self):
        ranks = [TenantSpec("t", p).rank for p in PRIORITY_CLASSES]
        assert ranks == sorted(ranks)
        assert TenantSpec("a", "interactive").rank \
            < TenantSpec("b", "best_effort").rank

    @pytest.mark.parametrize("kwargs", (
        dict(name=""),
        dict(priority="platinum"),
        dict(kv_quota_tokens=0),
        dict(kv_quota_blocks=-1),
        dict(kv_quota_tokens=8, kv_quota_blocks=2),
        dict(ttft_slo_s=0.0),
    ))
    def test_bad_spec_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            TenantSpec(**{"name": "t", **kwargs})

    def test_request_requires_tenant_spec(self):
        with pytest.raises(SimulationError):
            Request(0, (1, 2), 4, tenant="interactive")


class TestPriorityAdmission:
    def test_interactive_jumps_earlier_batch_arrivals(self):
        """Both classes queued at the same instant: the interactive
        request is admitted first even though the batch request was
        submitted first, so its TTFT does not pay for the batch
        prefill-and-decode turn (FIFO would admit request 0 first)."""
        eng = make_engine("cycle", "slotted", max_batch=1)
        reqs = [Request(0, tuple(range(1, 9)), 6, arrival_s=0.0),
                Request(1, (21, 22, 23), 4, arrival_s=0.0, tenant=FG)]
        report = eng.run(reqs)
        by_id = {r.request_id: r for r in report.results}
        assert by_id[1].ttft_s < by_id[0].ttft_s
        assert set(report.tenant_stats) == {"interactive", "batch"}

    def test_kv_pressure_evicts_lower_class_for_interactive(self):
        """An arrived interactive head that does not fit evicts running
        best-effort work — and never the other way around."""
        eng = make_engine("cycle", "slotted", max_batch=2, budget=48)
        reqs = [Request(0, (1, 2, 3), 40, arrival_s=0.0, tenant=BG),
                Request(1, tuple(range(10, 40)), 4, arrival_s=2e-4,
                        tenant=FG)]
        report = eng.run(reqs)
        by_id = {r.request_id: r for r in report.results}
        assert by_id[0].preemptions > 0
        assert by_id[1].preemptions == 0

    @pytest.mark.parametrize("kv_mode", ("slotted", "paged"))
    def test_no_priority_inversion_in_victim_order(self, kv_mode):
        """Under sustained mixed-class contention, every eviction lands
        on the lowest class present in its candidate pool — higher-class
        work is never sacrificed while lower-class work is evictable."""
        victim_log = []

        class Watched(ContinuousBatchScheduler):
            def _pick_victim(self, pool):
                victim = super()._pick_victim(pool)
                victim_log.append(
                    (victim.request.tenant.rank,
                     max(s.request.tenant.rank for s in pool)))
                return victim

        kv = dict(kv_mode=kv_mode, block_size=BLOCK_SIZE,
                  n_kv_blocks=64 // BLOCK_SIZE)
        backend = CycleModelBackend(TINY_MODEL, QUANT32,
                                    n_slots=MAX_BATCH, **kv)
        eng = Watched(backend, max_batch=MAX_BATCH,
                      kv_token_budget=64 if kv_mode == "slotted" else None,
                      fast_forward=True)
        trace = synthetic_trace(TINY_MODEL, 60, arrival_rate_rps=20000.0,
                                seed=7, prompt_len=(3, 10),
                                decode_len=(12, 40), tenant_mix=MIX)
        report = eng.run(trace)
        assert report.preemptions > 0
        assert victim_log
        assert all(victim == worst for victim, worst in victim_log)


class TestQuota:
    def test_tenant_at_quota_queues_with_pool_room(self):
        """Quota admission control: a second same-tenant request waits
        for its sibling to retire even though pool and batch have room —
        and its TTFT shows the serialization."""
        tenant = TenantSpec("capped", "batch", kv_quota_tokens=8)
        eng = make_engine("cycle", "slotted")
        reqs = [Request(0, (1, 2, 3, 4), 4, tenant=tenant),
                Request(1, (5, 6, 7, 8), 4, arrival_s=1e-6,
                        tenant=tenant)]
        report = eng.run(reqs)
        by_id = {r.request_id: r for r in report.results}
        assert report.max_batch_observed == 1
        assert by_id[1].ttft_s > by_id[0].e2e_s

    def test_quota_blocked_head_yields_to_lower_class(self):
        """A quota-blocked head must not block classes below it — only
        a *pool*-blocked head does (strict priority)."""
        capped = TenantSpec("capped", "batch", kv_quota_tokens=8)
        eng = make_engine("cycle", "slotted")
        reqs = [Request(0, (1, 2, 3, 4), 12, tenant=capped),
                Request(1, (5, 6, 7, 8), 12, arrival_s=1e-6,
                        tenant=capped),
                Request(2, (11, 12, 13), 6, arrival_s=2e-6,
                        tenant=TenantSpec("bg", "best_effort"))]
        report = eng.run(reqs)
        by_id = {r.request_id: r for r in report.results}
        # The best-effort request slipped past the blocked batch head.
        assert by_id[2].ttft_s < by_id[1].ttft_s

    def test_quota_growth_preempts_own_tenant_only(self):
        """Decode growth past quota evicts the offending tenant's own
        youngest sequence, not a bystander."""
        capped = TenantSpec("capped", "batch", kv_quota_tokens=24)
        eng = make_engine("cycle", "slotted")
        reqs = [Request(0, (1, 2, 3), 12, tenant=capped),
                Request(1, (4, 5, 6), 12, arrival_s=1e-6, tenant=capped),
                Request(2, (7, 8, 9), 12, arrival_s=2e-6)]
        report = eng.run(reqs)
        by_id = {r.request_id: r for r in report.results}
        assert by_id[0].preemptions + by_id[1].preemptions > 0
        assert by_id[2].preemptions == 0
        assert all(len(r.tokens) == 12 for r in report.results)

    def test_block_quota_converts_through_pool(self):
        tenant = TenantSpec("paged-capped", "batch", kv_quota_blocks=2)
        eng = make_engine("cycle", "paged")
        reqs = [Request(0, tuple(range(1, 9)), 6, tenant=tenant),
                Request(1, tuple(range(11, 19)), 6, arrival_s=1e-6,
                        tenant=tenant)]
        report = eng.run(reqs)
        assert report.max_batch_observed == 1  # 2 blocks = 16 tokens
        assert len(report.results) == 2

    def test_block_quota_on_slotted_backend_rejected(self):
        tenant = TenantSpec("t", "batch", kv_quota_blocks=2)
        eng = make_engine("cycle", "slotted")
        with pytest.raises(SimulationError, match="paged"):
            eng.submit(Request(0, (1, 2), 4, tenant=tenant))

    def test_conflicting_quotas_for_one_name_rejected(self):
        eng = make_engine("cycle", "slotted")
        eng.submit(Request(0, (1, 2), 4,
                           tenant=TenantSpec("t", kv_quota_tokens=32)))
        with pytest.raises(SimulationError, match="conflicting"):
            eng.submit(Request(1, (1, 2), 4,
                               tenant=TenantSpec("t", kv_quota_tokens=16)))

    def test_prompt_exceeding_quota_raises_on_submit(self):
        eng = make_engine("cycle", "slotted")
        with pytest.raises(CapacityError, match="quota"):
            eng.submit(Request(0, tuple(range(20)), 4,
                               tenant=TenantSpec("t", kv_quota_tokens=8)))

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 10_000),
           arrival_rate=st.sampled_from([1e9, 20000.0, 500.0]),
           n_requests=st.integers(6, 30))
    def test_quota_accounting_leak_free_under_churn(self, seed,
                                                    arrival_rate,
                                                    n_requests):
        """Hypothesis churn over admit/preempt/retire: the per-tenant
        cached-token ledger always equals the sum of live member
        positions, and drains to zero with the pool."""
        trace = synthetic_trace(TINY_MODEL, n_requests,
                                arrival_rate_rps=arrival_rate, seed=seed,
                                prompt_len=(3, 10), decode_len=(4, 30),
                                tenant_mix=MIX)
        eng = make_engine("cycle", "slotted", budget=64)
        for request in trace:
            eng.submit(request)
        while eng.waiting or eng.running:
            eng.step()
            live = {name: 0 for name in eng._tenant_cached}
            for s in eng.running:
                name = s.request.tenant.name
                if name in live:
                    live[name] += s.position
            assert eng._tenant_cached == live
        assert all(v == 0 for v in eng._tenant_cached.values())


class TestRejection:
    def poisoned(self):
        good = synthetic_trace(TINY_MODEL, 8, arrival_rate_rps=5000.0,
                               seed=3, prompt_len=(3, 8),
                               decode_len=(4, 12))
        bad = Request(100, tuple(range(200)), 4,
                      arrival_s=good[3].arrival_s, tenant=BG)
        return sorted(good + [bad], key=lambda r: r.arrival_s)

    @pytest.mark.parametrize("telemetry", ("full", "windows"))
    def test_poisoned_stream_drains_and_reports(self, telemetry):
        """A mid-trace request that can never fit must not abort the
        run: it surfaces as a REJECTED result and the rest completes."""
        eng = make_engine("cycle", "slotted", budget=64)
        report = eng.run(iter(self.poisoned()), telemetry=telemetry)
        results = {r.request_id: r for r in report.results}
        bad = results[100]
        assert bad.finish_reason == FinishReason.REJECTED
        assert bad.tokens == () and bad.ttft_s is None
        assert bad.e2e_s == 0.0
        assert len(results) == 9
        assert all(r.finish_reason != FinishReason.REJECTED
                   for rid, r in results.items() if rid != 100)
        assert report.tenant_stats["best_effort"]["n_rejected"] == 1
        assert report.tenant_stats["best_effort"]["new_tokens"] == 0

    def test_poisoned_materialized_run_matches_stream(self):
        trace = self.poisoned()
        full = make_engine("cycle", "slotted", budget=64).run(trace)
        streamed = make_engine("cycle", "slotted", budget=64).run(
            iter(trace), telemetry="windows")
        assert_reports_identical(streamed, full)

    def test_direct_submit_still_raises(self):
        """run()/streams reject; explicit submit() keeps the loud
        contract the PR 1 suite pinned."""
        eng = make_engine("cycle", "slotted", budget=32)
        with pytest.raises(CapacityError):
            eng.submit(Request(0, tuple(range(40)), 4))


class TestBestEffortDrop:
    def run_thrash(self, ff):
        bg = TenantSpec("bg", "best_effort")  # quota-free: evictions,
        eng = make_engine("cycle", "slotted", budget=64, ff=ff)  # not caps
        reqs = [Request(0, (1, 2, 3), 55, arrival_s=0.0, tenant=bg)]
        for i in range(1, 25):
            reqs.append(Request(i, tuple(range(2, 14)), 12,
                                arrival_s=i * 3e-4, tenant=FG))
        return eng.run(reqs)

    def test_thrashing_best_effort_dropped(self):
        """A best-effort sequence evicted past the limit is dropped
        (REJECTED) instead of thrashing the pool forever."""
        report = self.run_thrash(ff=False)
        bg = [r for r in report.results
              if r.tenant_class == "best_effort"][0]
        assert bg.finish_reason == FinishReason.REJECTED
        assert bg.preemptions > 3
        assert report.tenant_stats["best_effort"]["n_rejected"] == 1
        fg = report.tenant_stats["interactive"]
        assert fg["n_rejected"] == 0 and fg["n_requests"] == 24

    def test_drop_is_tier_invariant(self):
        eager = self.run_thrash(ff=False)
        for ff in ("single", "multi"):
            assert_reports_identical(self.run_thrash(ff), eager)


class TestTenancyTiersAgree:
    """Satellite: the differential harness over mixed-tenant traces —
    multi == single == eager across backends, KV modes, and TP=2."""

    @pytest.mark.parametrize("kv_mode", ("slotted", "paged"))
    @pytest.mark.parametrize("kind", ("cycle", "analytical"))
    @settings(deadline=None, max_examples=8)
    @given(seed=st.integers(0, 10_000),
           arrival_rate=st.sampled_from([1e9, 20000.0, 800.0]),
           n_requests=st.integers(4, 24),
           decode_hi=st.integers(8, 48))
    def test_mixed_tenant_tiers_agree(self, kind, kv_mode, seed,
                                      arrival_rate, n_requests,
                                      decode_hi):
        trace = synthetic_trace(TINY_MODEL, n_requests,
                                arrival_rate_rps=arrival_rate, seed=seed,
                                prompt_len=(3, 10),
                                decode_len=(4, decode_hi),
                                tenant_mix=MIX)
        eager = make_engine(kind, kv_mode, ff=False).run(trace)
        single = make_engine(kind, kv_mode, ff="single").run(trace)
        multi = make_engine(kind, kv_mode, ff="multi").run(trace)
        assert_reports_identical(single, eager)
        assert_reports_identical(multi, eager)

    def test_mixed_tenant_contention_tiers_agree(self):
        """Heavy preemption + quota churn: the regime where a wrong
        window cap would first diverge."""
        kwargs = dict(arrival_rate_rps=50000.0, seed=11,
                      prompt_len=(3, 10), decode_len=(16, 48),
                      tenant_mix=MIX)
        trace = synthetic_trace(TINY_MODEL, 80, **kwargs)
        eager = make_engine("cycle", "slotted", ff=False,
                            budget=64).run(trace)
        assert eager.preemptions > 0
        for ff in ("single", "multi"):
            got = make_engine("cycle", "slotted", ff=ff,
                              budget=64).run(trace)
            assert_reports_identical(got, eager)

    def test_sharded_tp2_mixed_tenant_tiers_agree(self):
        trace = synthetic_trace(TINY_MODEL, 16, arrival_rate_rps=2000.0,
                                seed=5, prompt_len=(3, 10),
                                decode_len=(8, 30), tenant_mix=MIX)
        eager = make_engine("cycle", "slotted", tp=2, ff=False).run(trace)
        for ff in ("single", "multi"):
            got = make_engine("cycle", "slotted", tp=2, ff=ff).run(trace)
            assert_reports_identical(got, eager)

    @pytest.mark.parametrize("telemetry", ("windows", "summary",
                                           "sketch"))
    def test_streamed_tenant_stats_match_full(self, telemetry):
        """Tenant stats are per-request scalars, exact at every level —
        including ``"sketch"``, which only sketches decode latencies."""
        kwargs = dict(arrival_rate_rps=5000.0, seed=9, prompt_len=(3, 8),
                      decode_len=(4, 20), tenant_mix=MIX)
        full = make_engine("cycle", "paged").run(
            synthetic_trace(TINY_MODEL, 30, **kwargs))
        streamed = make_engine("cycle", "paged").run(
            iter_synthetic_trace(TINY_MODEL, 30, **kwargs),
            telemetry=telemetry)
        assert streamed.tenant_stats == full.tenant_stats

    def test_cluster_merged_tenant_stats_match_materialized(self):
        kwargs = dict(arrival_rate_rps=8000.0, seed=2, prompt_len=(3, 8),
                      decode_len=(4, 16), tenant_mix=MIX)
        trace = synthetic_trace(TINY_MODEL, 40, **kwargs)

        def engines():
            return [make_engine("cycle", "slotted") for _ in range(2)]

        eager = ReplicaRouter(engines()).run(trace)
        streamed = ReplicaRouter(engines()).run(
            lambda: iter_synthetic_trace(TINY_MODEL, 40, **kwargs),
            telemetry="windows")
        assert streamed.tenant_stats == eager.tenant_stats
        total = sum(s["n_requests"]
                    for s in eager.tenant_stats.values())
        assert total == 40


class TestDefaultTenantUnchanged:
    def test_default_trace_draws_are_bit_identical(self):
        """tenant_mix=None must leave the RNG stream untouched — the
        default trace is the pre-tenancy trace, element for element."""
        kwargs = dict(arrival_rate_rps=700.0, seed=4, prompt_len=(3, 9),
                      decode_len=(4, 18))
        plain = synthetic_trace(TINY_MODEL, 30, **kwargs)
        mixed = synthetic_trace(TINY_MODEL, 30, tenant_mix=MIX, **kwargs)
        for a, b in zip(plain, mixed):
            assert a.arrival_s == b.arrival_s
            assert a.prompt == b.prompt
            assert a.max_new_tokens == b.max_new_tokens
            assert a.tenant is DEFAULT_TENANT

    def test_default_run_reports_single_batch_class(self):
        trace = synthetic_trace(TINY_MODEL, 10, arrival_rate_rps=1000.0,
                                seed=1, prompt_len=(3, 8),
                                decode_len=(4, 12))
        report = make_engine("cycle", "slotted").run(trace)
        assert set(report.tenant_stats) == {"batch"}
        stats = report.tenant_stats["batch"]
        assert stats["n_requests"] == 10
        assert stats["new_tokens"] == report.total_new_tokens
        assert all(r.tenant_class == "batch" for r in report.results)

    def test_retenanted_trace_changes_only_tenancy(self):
        """Re-tagging every request with the default tenant reproduces
        the untagged run exactly — tenancy with one batch-class tenant
        is the identity policy."""
        trace = synthetic_trace(TINY_MODEL, 20, arrival_rate_rps=9000.0,
                                seed=6, prompt_len=(3, 8),
                                decode_len=(6, 24), tenant_mix=MIX)
        plain = [dataclasses.replace(r, tenant=DEFAULT_TENANT)
                 for r in trace]
        named = [dataclasses.replace(
            r, tenant=TenantSpec(r.tenant.name, "batch"))
            for r in trace]
        ref = make_engine("cycle", "slotted").run(plain)
        got = make_engine("cycle", "slotted").run(named)
        assert ref.total_time_s == got.total_time_s
        assert ref.preemptions == got.preemptions
        for ra, rb in zip(ref.results, got.results):
            assert tuple(ra.tokens) == tuple(rb.tokens)
            assert ra.ttft_s == rb.ttft_s
            assert ra.e2e_s == rb.e2e_s
