"""Design-space exploration and the boot loader model."""

import pytest

from repro.config import LLAMA2_7B, TINY_MODEL, W4A16_KV8, QuantConfig
from repro.core.explore import (
    evaluate_design,
    paper_design_point,
    pareto_frontier,
    sweep_design_space,
)
from repro.errors import ConfigError, SimulationError
from repro.packing.memimage import build_memory_image
from repro.runtime.loader import ModelLoader


class TestDesignSpace:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_design_space(LLAMA2_7B, W4A16_KV8,
                                  lanes_options=(64, 128, 256),
                                  port_options=(2, 4),
                                  freq_options=(200e6, 300e6),
                                  context=256)

    def test_paper_point_saturates(self):
        point = paper_design_point(LLAMA2_7B, W4A16_KV8, context=256)
        assert point.fits
        assert point.utilization > 0.85
        assert point.tokens_per_s == pytest.approx(5.2, abs=0.2)

    def test_paper_point_on_frontier(self, sweep):
        frontier = pareto_frontier(sweep)
        assert any(p.lanes == 128 and p.axi_ports == 4
                   and p.freq_mhz == 300 for p in frontier)

    def test_frontier_monotone(self, sweep):
        frontier = pareto_frontier(sweep)
        rates = [p.tokens_per_s for p in frontier]
        powers = [p.power_w for p in frontier]
        assert all(a <= b for a, b in zip(rates, rates[1:]))
        assert all(a <= b for a, b in zip(powers, powers[1:]))

    def test_frontier_is_feasible_subset(self, sweep):
        frontier = pareto_frontier(sweep)
        assert frontier
        assert all(p.fits for p in frontier)

    def test_more_lanes_beyond_128_useless(self, sweep):
        by_cfg = {(p.lanes, p.axi_ports, p.freq_mhz): p for p in sweep}
        p128 = by_cfg[(128, 4, 300.0)]
        p256 = by_cfg[(256, 4, 300.0)]
        assert p256.tokens_per_s == pytest.approx(p128.tokens_per_s,
                                                  rel=0.01)
        assert p256.power_w > p128.power_w

    def test_fewer_ports_throttle(self, sweep):
        by_cfg = {(p.lanes, p.axi_ports, p.freq_mhz): p for p in sweep}
        assert by_cfg[(128, 2, 300.0)].tokens_per_s < \
            0.6 * by_cfg[(128, 4, 300.0)].tokens_per_s

    def test_tokens_per_joule(self):
        point = paper_design_point(LLAMA2_7B, W4A16_KV8)
        assert point.tokens_per_joule == pytest.approx(
            point.tokens_per_s / point.power_w)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigError):
            evaluate_design(LLAMA2_7B, W4A16_KV8, freq_hz=0)


class TestModelLoader:
    @pytest.fixture(scope="class")
    def llama_image(self):
        return build_memory_image(LLAMA2_7B, W4A16_KV8, context=1024)

    def test_boot_dominated_by_sd(self, llama_image):
        timeline = ModelLoader().boot_timeline(llama_image)
        assert timeline.sd_read_s > 0.8 * timeline.total_s
        # ~4 GB at 40 MB/s: boot takes on the order of 100 seconds.
        assert 60 < timeline.total_s < 300

    def test_faster_card_helps(self, llama_image):
        slow = ModelLoader(sd_bytes_per_s=20e6).boot_timeline(llama_image)
        fast = ModelLoader(sd_bytes_per_s=90e6).boot_timeline(llama_image)
        assert fast.total_s < slow.total_s

    def test_describe_renders(self, llama_image):
        text = ModelLoader().describe(llama_image)
        assert "SD read" in text and "total" in text

    def test_checksums_roundtrip(self, tiny_qweights, tiny_quant):
        image = build_memory_image(TINY_MODEL, tiny_quant, context=64,
                                   qweights=tiny_qweights)
        crcs = ModelLoader.checksum_regions(image)
        assert ModelLoader.verify_against(image, crcs) == []

    def test_corruption_detected(self, tiny_qweights, tiny_quant):
        image = build_memory_image(TINY_MODEL, tiny_quant, context=64,
                                   qweights=tiny_qweights)
        crcs = ModelLoader.checksum_regions(image)
        name = "weights.layer0.wq"
        corrupted = bytearray(image.data[name])
        corrupted[0] ^= 0xFF
        image.data[name] = bytes(corrupted)
        assert ModelLoader.verify_against(image, crcs) == [name]

    def test_virtual_image_cannot_checksum(self, llama_image):
        with pytest.raises(SimulationError):
            ModelLoader.checksum_regions(llama_image)

    def test_rejects_bad_rates(self):
        with pytest.raises(SimulationError):
            ModelLoader(sd_bytes_per_s=0)
