"""Piecewise-LUT exponential unit."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.numerics.explut import ExpLut, lut_softmax
from repro.numerics.softmax import reference_softmax


@pytest.fixture(scope="module")
def lut():
    return ExpLut(depth=1024)


def test_exp_zero_is_one(lut):
    assert float(lut.exp(0.0)) == 1.0


def test_exp_ln2_is_two(lut):
    assert float(lut.exp(np.log(2.0))) == pytest.approx(2.0, rel=2e-3)


def test_matches_numpy_over_range(lut):
    xs = np.linspace(-8, 8, 500)
    approx = lut.exp(xs).astype(np.float64)
    exact = np.exp(np.float16(xs).astype(np.float64))
    rel = np.abs(approx - exact) / np.maximum(exact, 1e-10)
    assert np.max(rel) < 3e-3


def test_relative_error_bound(lut):
    assert lut.max_relative_error() < 3e-3


def test_deeper_lut_is_more_accurate():
    coarse = ExpLut(depth=64).max_relative_error()
    fine = ExpLut(depth=4096).max_relative_error()
    assert fine < coarse


def test_negative_underflow_is_zero(lut):
    assert float(lut.exp(-30.0)) == 0.0


def test_saturates_instead_of_inf(lut):
    out = float(lut.exp(100.0))
    assert np.isfinite(out)
    assert out == pytest.approx(65504.0)


def test_rejects_bad_depth():
    with pytest.raises(ConfigError):
        ExpLut(depth=1000)


class TestLutSoftmax:
    def test_sums_to_one(self, rng, lut):
        probs = lut_softmax(rng.standard_normal(64), lut).astype(np.float64)
        assert probs.sum() == pytest.approx(1.0, abs=0.02)

    def test_close_to_reference(self, rng, lut):
        x = rng.standard_normal(48) * 3
        got = lut_softmax(x, lut).astype(np.float64)
        ref = reference_softmax(np.float16(x).astype(np.float64))
        assert np.max(np.abs(got - ref)) < 6e-3

    def test_empty_raises(self, lut):
        with pytest.raises(SimulationError):
            lut_softmax([], lut)

    def test_argmax_preserved(self, rng, lut):
        x = rng.standard_normal(32)
        got = lut_softmax(x, lut).astype(np.float64)
        assert int(np.argmax(got)) == int(np.argmax(x))
