"""Synthetic-trace validation and the TTFT percentile metric.

Regression coverage for two satellites: ``shared_prefix_len`` must be
validated/clamped against the prompt-length range instead of silently
distorting the trace, and :class:`ServeReport` exposes TTFT
percentiles next to the decode-latency ones.
"""

import pytest

from repro.config import TINY_MODEL, QuantConfig
from repro.engine import (
    ContinuousBatchScheduler,
    CycleModelBackend,
    ServeReport,
    synthetic_trace,
)
from repro.errors import SimulationError
from repro.stats import percentile_nearest_rank


@pytest.fixture(scope="module")
def quant32():
    return QuantConfig(weight_group_size=32)


class TestSharedPrefixValidation:
    def test_prompts_always_contain_the_full_prefix(self):
        """No generated prompt may be shorter than the shared prefix."""
        trace = synthetic_trace(TINY_MODEL, 16, prompt_len=(1, 8),
                                shared_prefix_len=32, seed=5)
        prefix = trace[0].prompt[:32]
        for request in trace:
            assert len(request.prompt) > 32
            assert request.prompt[:32] == prefix

    def test_prefix_crowding_out_min_tail_raises(self):
        # 60 prefix + 3 tail + 1 decode token >= 64-token context.
        with pytest.raises(SimulationError, match="shared prefix"):
            synthetic_trace(TINY_MODEL, 4, prompt_len=(3, 8),
                            shared_prefix_len=60)

    def test_oversized_tail_range_is_clamped_not_collapsed(self):
        """A top-of-range clamp keeps the draw uniform over what fits:
        the old per-sample min() piled every oversized draw onto the
        cap, silently changing the distribution."""
        # Prefix 48 in a 64-token context caps tails at 14 (< hi=60).
        trace = synthetic_trace(TINY_MODEL, 64, prompt_len=(2, 60),
                                shared_prefix_len=48, seed=1)
        tails = [len(r.prompt) - 48 for r in trace]
        assert max(tails) <= 14
        assert min(tails) >= 2
        # Uniform over [2, 14]: the cap value must not dominate.
        assert tails.count(14) < len(tails) // 3

    def test_every_request_fits_context_with_decode_room(self):
        trace = synthetic_trace(TINY_MODEL, 32, prompt_len=(2, 60),
                                decode_len=(8, 32),
                                shared_prefix_len=40, seed=2)
        for request in trace:
            assert len(request.prompt) + 1 <= TINY_MODEL.max_context
            assert request.max_new_tokens >= 1

    def test_unclamped_traces_are_unchanged(self):
        """The clamp only engages when the range does not fit — the
        PR 2 shared-prefix traces replay identically."""
        a = synthetic_trace(TINY_MODEL, 8, prompt_len=(2, 6),
                            shared_prefix_len=32, seed=23)
        b = synthetic_trace(TINY_MODEL, 8, prompt_len=(2, 6),
                            shared_prefix_len=32, seed=23)
        assert [r.prompt for r in a] == [r.prompt for r in b]
        assert max(len(r.prompt) for r in a) <= 32 + 6

    def test_negative_prefix_rejected(self):
        with pytest.raises(SimulationError):
            synthetic_trace(TINY_MODEL, 4, shared_prefix_len=-1)


class TestTTFTPercentiles:
    @pytest.fixture(scope="class")
    def report(self, quant32) -> ServeReport:
        backend = CycleModelBackend(TINY_MODEL, quant32, n_slots=4)
        engine = ContinuousBatchScheduler(backend, max_batch=4,
                                          kv_token_budget=256)
        trace = synthetic_trace(TINY_MODEL, 12, arrival_rate_rps=1e6,
                                prompt_len=(2, 10), decode_len=(4, 12),
                                seed=9)
        return engine.run(trace)

    def test_matches_nearest_rank_over_ttfts(self, report):
        ttfts = [r.ttft_s for r in report.results]
        for p in (0, 50, 95, 99, 100):
            assert report.ttft_percentile_s(p) \
                == percentile_nearest_rank(ttfts, p)

    def test_monotone_and_bracketed(self, report):
        p50 = report.ttft_percentile_s(50)
        p95 = report.ttft_percentile_s(95)
        p99 = report.ttft_percentile_s(99)
        assert p50 <= p95 <= p99
        assert report.ttft_percentile_s(0) \
            == min(r.ttft_s for r in report.results)
        assert report.ttft_percentile_s(100) \
            == max(r.ttft_s for r in report.results)

    def test_empty_report_raises(self):
        with pytest.raises(SimulationError):
            ServeReport().ttft_percentile_s(50)

    def test_out_of_range_percentile_raises(self, report):
        with pytest.raises(SimulationError):
            report.ttft_percentile_s(101)
