"""Graceful drains, KV migration, failure domains, hedged dispatch.

The PR 10 contract: a ``"drain"`` fault hands its work over instead of
killing it — queued members re-dispatch immediately, running sequences
checkpoint at the deadline and resume elsewhere with their KV shipped
over the interconnect and *zero* prefill recompute; failure domains
correlate faults and steer retries/handoffs across racks; hedged
dispatch duplicates tail-latency requests first-token-wins.  All of it
stays bit-identical across scheduler fast-forward tiers, and retried
or migrated requests account TTFT/E2E from their *original* arrival.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    FailureDomain,
    FaultEvent,
    FaultSchedule,
    HealthTracker,
    HedgePolicy,
    MigrationPolicy,
    ReplicaRouter,
    RetryPolicy,
    TEN_GIG_ETHERNET,
)
from repro.config import TINY_MODEL
from repro.engine import FinishReason, TenantSpec, synthetic_trace
from repro.errors import SimulationError
from test_telemetry_equivalence import (
    assert_reports_identical,
    make_engine,
)

FF_TIERS = ("multi", "single", False)


def trace(n=32, rate=1e9, seed=0, decode=(64, 128), mix=None):
    return synthetic_trace(TINY_MODEL, n_requests=n,
                           arrival_rate_rps=rate, seed=seed,
                           prompt_len=(3, 8), decode_len=decode,
                           tenant_mix=mix)


def cluster(ff="multi", n=3, kv="slotted", **kwargs):
    engines = [make_engine("cycle", kv, ff=ff) for _ in range(n)]
    return ReplicaRouter(engines, **kwargs)


#: all arrivals at ~t=0, drain lands while the backlog is mid-flight,
#: and the window is too short for running sequences to finish — so the
#: deadline checkpoint path (KV actually ships) is always exercised.
DRAIN = FaultSchedule([FaultEvent("drain", 1, 0.0005, 0.0005)])

#: the same disruption window, taken as an unplanned crash instead.
CRASH = FaultSchedule([FaultEvent("crash", 1, 0.0005, 0.0005,
                                  warmup_s=0.0)])


# ---------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------

class TestMigrationPolicy:
    def test_handoff_cost_is_serialize_plus_link(self):
        policy = MigrationPolicy()
        base = policy.serialize_s + TEN_GIG_ETHERNET.latency_s
        assert policy.handoff_s(0) == base
        bw = TEN_GIG_ETHERNET.bandwidth_bytes_per_s
        assert policy.handoff_s(1 << 20) == base + (1 << 20) / bw

    def test_validation(self):
        with pytest.raises(SimulationError):
            MigrationPolicy(serialize_s=-1e-6)
        with pytest.raises(SimulationError):
            MigrationPolicy().handoff_s(-1)

    def test_hedge_policy_validation(self):
        with pytest.raises(SimulationError):
            HedgePolicy(delay_s=0.0)
        with pytest.raises(SimulationError):
            HedgePolicy(delay_s=0.001, max_hedges=0)

    def test_hedge_from_report_reads_ttft_tail(self):
        rep = cluster().run(trace(), telemetry="full")
        policy = HedgePolicy.from_report(rep, quantile=95.0)
        assert policy.delay_s == rep.ttft_percentile_s(95.0)


# ---------------------------------------------------------------------
# Failure domains
# ---------------------------------------------------------------------

class TestFailureDomains:
    def test_domain_validation(self):
        with pytest.raises(SimulationError):
            FailureDomain("empty", ())
        with pytest.raises(SimulationError):
            FailureDomain("dup", (0, 0))
        with pytest.raises(SimulationError):
            FailureDomain("neg", (-1,))

    def test_topology_validation(self):
        with pytest.raises(SimulationError):
            FaultSchedule([], topology=(FailureDomain("a", (0, 1)),
                                        FailureDomain("b", (1, 2))))
        with pytest.raises(SimulationError):
            FaultSchedule.generate(
                2, horizon_s=0.1, topology=(FailureDomain("a", (0, 5)),))
        with pytest.raises(SimulationError):
            FaultSchedule([], topology=(FailureDomain("a", (0,)),
                                        FailureDomain("a", (1,))))

    def test_generate_correlates_domain_members(self):
        """One fault process per domain: every member sees the same
        event kinds at the same clocks (a rack outage takes the whole
        rack down at one instant)."""
        topo = (FailureDomain("rack0", (0, 1)),
                FailureDomain("rack1", (2, 3)))
        sched = FaultSchedule.generate(4, horizon_s=0.02, seed=7,
                                       mean_gap_s=0.005, topology=topo)
        by_replica = {r: [(e.kind, e.start_s, e.duration_s)
                          for e in sched.events if e.replica == r]
                      for r in range(4)}
        assert by_replica[0] == by_replica[1]
        assert by_replica[2] == by_replica[3]
        assert by_replica[0] != by_replica[2]

    def test_generate_topology_is_seed_deterministic(self):
        topo = (FailureDomain("rack0", (0, 1)),)
        a = FaultSchedule.generate(3, horizon_s=0.02, seed=3,
                                   topology=topo)
        b = FaultSchedule.generate(3, horizon_s=0.02, seed=3,
                                   topology=topo)
        assert a == b and a.topology == topo

    def test_health_tracker_domain_views(self):
        topo = (FailureDomain("rack0", (0, 1)),
                FailureDomain("rack1", (2, 3)))
        sched = FaultSchedule(
            [FaultEvent("crash", 0, 0.001, 0.002, warmup_s=0.0),
             FaultEvent("crash", 1, 0.001, 0.002, warmup_s=0.0)],
            topology=topo)
        tracker = HealthTracker(sched, 4, detection_delay_s=0.0)
        assert tracker.topology == topo
        assert tracker.domain_of(1) == "rack0"
        assert tracker.domain_of(3) == "rack1"
        health = tracker.domain_health(0.002)
        assert health["rack0"] == 0.0 and health["rack1"] == 1.0

    def test_retry_candidates_avoid_failing_domain(self):
        """Mid-outage, nothing re-dispatches into the dying rack; with
        everything healthy the dead replica's whole domain is skipped
        and the survivors interleave across racks."""
        topo = (FailureDomain("rack0", (0, 1)),
                FailureDomain("rack1", (2, 3)),
                FailureDomain("rack2", (4, 5)))
        sched = FaultSchedule(
            [FaultEvent("crash", 0, 0.001, 0.004, warmup_s=0.0),
             FaultEvent("crash", 1, 0.001, 0.004, warmup_s=0.0)],
            topology=topo)
        tracker = HealthTracker(sched, 6, detection_delay_s=0.0)
        mid = tracker.retry_candidates(0.002, died_on=0)
        assert set(mid) <= {2, 3, 4, 5}
        # Interleaved round-robin across the surviving racks.
        assert mid == (2, 4, 3, 5)
        healthy = tracker.retry_candidates(0.0005, died_on=0)
        assert set(healthy) == {2, 3, 4, 5}

    def test_drain_window_counts_as_unhealthy(self):
        sched = FaultSchedule([FaultEvent("drain", 0, 0.001, 0.002)])
        tracker = HealthTracker(sched, 2, detection_delay_s=0.0005)
        # Drains are planned: no detection delay, and no repair tail.
        assert tracker.is_healthy(0, 0.0005)
        assert not tracker.is_healthy(0, 0.001)
        assert not tracker.is_healthy(0, 0.0029)
        assert tracker.is_healthy(0, 0.003)
        assert tracker.mttr_s() is None


# ---------------------------------------------------------------------
# Drain + migration (the tentpole)
# ---------------------------------------------------------------------

class TestDrainMigration:
    def test_drain_loses_nothing_and_recomputes_nothing(self):
        router = cluster(faults=DRAIN)
        report = router.run(trace(), telemetry="full")
        res = report.resilience
        assert res["n_drains"] == 1
        assert res["n_migrated"] > 0
        assert res["n_killed"] == 0 and res["n_failed"] == 0
        assert res["n_lost"] == 0 and res["lost_request_ids"] == ()
        # Running sequences checkpointed mid-decode: KV actually
        # shipped, and the prefix-skip resume recomputed zero tokens.
        assert res["migrated_kv_bytes"] > 0
        assert res["n_resumed"] > 0
        assert res["resume_recompute_tokens"] == 0
        assert report.n_requests == 32
        ids = [r.request_id for r in report.results]
        assert len(ids) == len(set(ids)) == 32

    def test_drain_is_tier_identical(self):
        reports = [cluster(ff=ff, faults=DRAIN)
                   .run(trace(), telemetry="full") for ff in FF_TIERS]
        for other in reports[1:]:
            assert reports[0].resilience == other.resilience
            assert_reports_identical(reports[0], other)

    def test_drain_is_tier_identical_paged(self):
        reports = [cluster(ff=ff, kv="paged", faults=DRAIN)
                   .run(trace(), telemetry="full") for ff in FF_TIERS]
        for other in reports[1:]:
            assert reports[0].resilience == other.resilience
            assert_reports_identical(reports[0], other)

    def test_migrated_tokens_match_fault_free_run(self):
        """Migration changes *where* a request decodes, never *what*
        it decodes: per-request token streams are pure functions of the
        request id, so every result matches the fault-free run."""
        clean = cluster().run(trace(), telemetry="full")
        drained = cluster(faults=DRAIN).run(trace(), telemetry="full")
        clean_tokens = {r.request_id: r.tokens for r in clean.results}
        for res in drained.results:
            assert res.tokens == clean_tokens[res.request_id]

    def test_drain_beats_same_instant_crash(self):
        """The acceptance bar: a graceful drain loses zero requests and
        zero prefill work, and beats the identical-instant crash on
        tail interactive TTFT — the crash recomputes everything from
        scratch after the retry backoff."""
        drained = cluster(faults=DRAIN).run(trace(), telemetry="full")
        crashed = cluster(faults=CRASH).run(trace(), telemetry="full")
        assert drained.resilience["n_lost"] == 0
        assert drained.resilience["n_killed"] == 0
        assert crashed.resilience["n_killed"] > 0
        # Lost work: the crash threw away generated tokens and paid
        # full recompute on retry; the drain shipped its KV instead.
        assert drained.resilience["resume_recompute_tokens"] == 0
        assert drained.ttft_percentile_s(99) \
            < crashed.ttft_percentile_s(99)

    def test_drain_streamed_matches_full_counts(self):
        full = cluster(faults=DRAIN).run(trace(), telemetry="full")
        streamed = cluster(faults=DRAIN).run(trace(),
                                             telemetry="summary")
        assert streamed.resilience == full.resilience
        assert streamed.n_requests == full.n_requests
        assert streamed.total_new_tokens == full.total_new_tokens
        assert streamed.total_time_s == full.total_time_s

    def test_drain_reopens_admission_after_deadline(self):
        """Post-deadline arrivals are served by the drained replica
        again (a drain is maintenance, not decommissioning)."""
        late = [dataclasses.replace(r, arrival_s=r.arrival_s + 0.01,
                                    request_id=r.request_id + 1000)
                for r in trace(n=12, decode=(4, 8))]
        router = cluster(faults=DRAIN)
        report = router.run(trace() + late, telemetry="full")
        assert report.resilience["n_lost"] == 0
        assert any(router.assignments[r.request_id] == 1 for r in late)

    def test_extract_state_requires_running_member(self):
        engine = make_engine("cycle", "slotted", ff="multi")
        with pytest.raises(SimulationError, match="not running"):
            engine.extract_state(123)

    def test_migration_instants_in_flight_recorder(self):
        from repro.obs import FlightRecorder

        engines = [make_engine("cycle", "slotted", ff="multi")
                   for _ in range(3)]
        for e in engines:
            e.flight = FlightRecorder()
        router = ReplicaRouter(engines, faults=DRAIN)
        router.run(trace(), telemetry="full")
        names = {ev["name"] for e in engines
                 for ev in e.flight.chrome_events()
                 if ev["ph"] == "i"}
        assert "migrate-out" in names
        assert "migrate-in" in names
        assert "drain" in names

    def test_correlated_rack_drain_is_tier_identical(self):
        topo = (FailureDomain("rack0", (0, 1)),
                FailureDomain("rack1", (2, 3)))
        sched = FaultSchedule(
            [FaultEvent("drain", 0, 0.0005, 0.0005),
             FaultEvent("drain", 1, 0.0005, 0.0005)],
            topology=topo)
        reports = [cluster(ff=ff, n=4, faults=sched)
                   .run(trace(n=48), telemetry="full")
                   for ff in FF_TIERS]
        res = reports[0].resilience
        assert res["n_drains"] == 2 and res["n_lost"] == 0
        assert res["n_migrated"] > 0
        for other in reports[1:]:
            assert res == other.resilience
            assert_reports_identical(reports[0], other)


# ---------------------------------------------------------------------
# Retry-aware latency accounting (satellite 1)
# ---------------------------------------------------------------------

class TestRetryAwareTTFT:
    def test_retried_ttft_measures_from_original_arrival(self):
        """A killed-then-retried request's TTFT covers the whole client
        wait — arrival on the dead replica, the backoff, and the fresh
        prefill — so it must exceed the arrival->kill gap.  (Measured
        from the *retry* arrival it usually would not.)"""
        faults = FaultSchedule.single_crash(1, 0.0005, 0.001,
                                            warmup_s=0.0005)
        router = cluster(faults=faults)
        report = router.run(trace(n=48, decode=(4, 16)),
                            telemetry="full")
        results = {r.request_id: r for r in report.results}
        first_kill = {}
        for engine in router.engines:
            for k in engine.killed:
                rid = k.request.request_id
                first_kill[rid] = min(k.kill_s,
                                      first_kill.get(rid, k.kill_s))
        arrivals = {r.request_id: r.arrival_s
                    for r in trace(n=48, decode=(4, 16))}
        checked = 0
        for rid, kill_s in first_kill.items():
            res = results[rid]
            if res.finish_reason is FinishReason.FAILED:
                continue
            assert res.ttft_s is not None
            assert res.ttft_s > kill_s - arrivals[rid]
            assert res.e2e_s >= res.ttft_s
            checked += 1
        assert checked > 0

    def test_migrated_ttft_measures_from_original_arrival(self):
        """Same ledger rule for migration: the handoff transfer delay
        is inside the client's E2E, and a first token streamed before
        the drain keeps its original TTFT."""
        clean = cluster().run(trace(), telemetry="full")
        drained = cluster(faults=DRAIN).run(trace(), telemetry="full")
        clean_res = {r.request_id: r for r in clean.results}
        moved = slower = 0
        for res in drained.results:
            base = clean_res[res.request_id]
            assert res.ttft_s is not None and base.ttft_s is not None
            if res.e2e_s > base.e2e_s:
                moved += 1
            if res.ttft_s > base.ttft_s:
                slower += 1
        # The drain delayed somebody (the migrants), and no request got
        # a *negative* accounting artifact out of it.
        assert moved > 0
        assert slower <= moved


# ---------------------------------------------------------------------
# Hedged dispatch
# ---------------------------------------------------------------------

#: replica 0 hangs long enough that its queued work blows the hedge
#: delay; the duplicates land on healthy replicas and win.
STALL = FaultSchedule([FaultEvent("hang", 0, 0.0002, 0.004)])


class TestHedgedDispatch:
    def test_hedging_cuts_tail_ttft_vs_retry_only(self):
        base = cluster(faults=STALL).run(trace(n=48, decode=(8, 24)),
                                         telemetry="full")
        hedged = cluster(faults=STALL, hedge=HedgePolicy(0.0005)) \
            .run(trace(n=48, decode=(8, 24)), telemetry="full")
        res = hedged.resilience
        assert res["n_hedged"] > 0 and res["n_hedge_wins"] > 0
        assert hedged.ttft_percentile_s(99) < base.ttft_percentile_s(99)
        assert base.resilience["n_hedged"] == 0

    def test_hedged_report_has_no_duplicate_requests(self):
        hedged = cluster(faults=STALL, hedge=HedgePolicy(0.0005)) \
            .run(trace(n=48, decode=(8, 24)), telemetry="full")
        ids = [r.request_id for r in hedged.results]
        assert len(ids) == len(set(ids)) == 48
        assert hedged.resilience["n_lost"] == 0

    def test_hedged_run_is_deterministic(self):
        runs = [cluster(faults=STALL, hedge=HedgePolicy(0.0005))
                .run(trace(n=48, decode=(8, 24)), telemetry="full")
                for _ in range(2)]
        assert runs[0].resilience == runs[1].resilience
        assert_reports_identical(runs[0], runs[1])

    def test_hedging_requires_full_telemetry(self):
        router = cluster(faults=STALL, hedge=HedgePolicy(0.0005))
        with pytest.raises(SimulationError, match="telemetry"):
            router.run(trace(n=8, decode=(4, 8)), telemetry="summary")


# ---------------------------------------------------------------------
# Simultaneous domain outages (satellite 4, hypothesis)
# ---------------------------------------------------------------------

QFG = TenantSpec("qfg", "interactive")
QBULK = TenantSpec("qbulk", "batch", kv_quota_tokens=96)
QBG = TenantSpec("qbg", "best_effort", kv_quota_tokens=64)
QMIX = ((QFG, 0.25), (QBULK, 0.5), (QBG, 0.25))


class TestSimultaneousDomainOutages:
    @settings(deadline=None, max_examples=8)
    @given(seed=st.integers(0, 10_000),
           start_frac=st.floats(0.05, 0.6),
           n_requests=st.integers(16, 40))
    def test_two_domains_crash_at_once_nothing_lost(self, seed,
                                                    start_frac,
                                                    n_requests):
        """Two whole racks crash at the same instant while a third
        survives: every request still retires or fails loudly, nothing
        is silently lost, and every replica's per-tenant cached-token
        ledger is drained afterwards."""
        rate = 3000.0
        horizon = n_requests / rate
        start = start_frac * horizon
        topo = (FailureDomain("rack0", (0, 1)),
                FailureDomain("rack1", (2, 3)),
                FailureDomain("rack2", (4, 5)))
        events = [FaultEvent("crash", r, start, 0.3 * horizon,
                             warmup_s=0.05 * horizon)
                  for r in (0, 1, 2, 3)]
        faults = FaultSchedule(events, topology=topo)
        router = cluster(n=6, faults=faults,
                         retry=RetryPolicy(budget=4))
        report = router.run(
            trace(n=n_requests, rate=rate, seed=seed,
                  decode=(4, 16), mix=QMIX),
            telemetry="full")
        res = report.resilience
        assert res["n_lost"] == 0
        assert res["lost_request_ids"] == ()
        assert report.n_requests == n_requests
        ids = [r.request_id for r in report.results]
        assert len(ids) == len(set(ids)) == n_requests
        for engine in router.engines:
            assert all(v == 0
                       for v in engine._tenant_cached.values()), \
                engine._tenant_cached
