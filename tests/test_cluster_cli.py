"""CLI coverage for the multi-accelerator serving flags."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_serve_sim_prints_ttft_percentiles(capsys):
    code, out = run(capsys, "serve-sim", "--model", "tiny-test",
                    "--requests", "6")
    assert code == 0
    for token in ("TTFT p50", "TTFT p95", "TTFT p99", "token lat p50"):
        assert token in out


def test_serve_sim_tp_cycle(capsys):
    code, out = run(capsys, "serve-sim", "--model", "tiny-test",
                    "--requests", "6", "--tp", "2",
                    "--interconnect", "Aurora-x4")
    assert code == 0
    assert "tp 2 x 1 replicas over Aurora-x4" in out


def test_serve_sim_replicated_functional_paged(capsys):
    code, out = run(capsys, "serve-sim", "--model", "tiny-test",
                    "--backend", "functional", "--requests", "8",
                    "--tp", "2", "--replicas", "2",
                    "--router", "prefix_affinity",
                    "--kv", "paged", "--shared-prefix", "16")
    assert code == 0
    assert "replica" in out        # per-replica table
    assert "prefix reuse" in out


def test_serve_sim_unknown_interconnect_exits():
    with pytest.raises(SystemExit):
        main(["serve-sim", "--model", "tiny-test", "--tp", "2",
              "--interconnect", "carrier-pigeon"])


def test_serve_sim_tp_must_divide_model():
    with pytest.raises(SystemExit):
        main(["serve-sim", "--model", "tiny-test", "--tp", "3"])


def test_bench_serve_scaling_sweep(capsys):
    """The TP x DP grid on the bandwidth-bound model must scale."""
    code, out = run(capsys, "bench-serve", "--scaling-sweep",
                    "--requests", "6", "--max-batch", "4")
    assert code == 0
    assert "TP x DP scaling" in out
    assert "tensor-parallel scaling HOLDS" in out
    # All six grid points rendered.
    assert out.count("tok") >= 6
