"""CLI coverage for the multi-accelerator serving flags."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_serve_sim_prints_ttft_percentiles(capsys):
    code, out = run(capsys, "serve-sim", "--model", "tiny-test",
                    "--requests", "6")
    assert code == 0
    for token in ("TTFT p50", "TTFT p95", "TTFT p99", "token lat p50"):
        assert token in out


def test_serve_sim_tp_cycle(capsys):
    code, out = run(capsys, "serve-sim", "--model", "tiny-test",
                    "--requests", "6", "--tp", "2",
                    "--interconnect", "Aurora-x4")
    assert code == 0
    assert "tp 2 x 1 replicas over Aurora-x4" in out


def test_serve_sim_replicated_functional_paged(capsys):
    code, out = run(capsys, "serve-sim", "--model", "tiny-test",
                    "--backend", "functional", "--requests", "8",
                    "--tp", "2", "--replicas", "2",
                    "--router", "prefix_affinity",
                    "--kv", "paged", "--shared-prefix", "16")
    assert code == 0
    assert "replica" in out        # per-replica table
    assert "prefix reuse" in out


def test_serve_sim_unknown_interconnect_exits():
    with pytest.raises(SystemExit):
        main(["serve-sim", "--model", "tiny-test", "--tp", "2",
              "--interconnect", "carrier-pigeon"])


def test_serve_sim_tp_must_divide_model():
    with pytest.raises(SystemExit):
        main(["serve-sim", "--model", "tiny-test", "--tp", "3"])


def test_serve_sim_drain_migrates_without_losing_work(capsys):
    code, out = run(capsys, "serve-sim", "--model", "tiny-test",
                    "--requests", "48", "--replicas", "3", "--drain",
                    "--telemetry", "full")
    assert code == 0
    assert "drains 1: migrated" in out
    assert "lost 0" in out
    assert "recompute 0 tokens" in out


def test_serve_sim_chaos_domains(capsys):
    code, out = run(capsys, "serve-sim", "--model", "tiny-test",
                    "--requests", "48", "--replicas", "4", "--chaos",
                    "--domains", "2", "--telemetry", "full")
    assert code == 0
    assert "chaos" in out
    assert "lost 0" in out


def test_serve_sim_hedge_rides_drain(capsys):
    code, out = run(capsys, "serve-sim", "--model", "tiny-test",
                    "--requests", "48", "--replicas", "3", "--chaos",
                    "--drain", "--hedge", "0.002",
                    "--telemetry", "full")
    assert code == 0
    assert "hedged" in out


def test_serve_sim_drain_needs_replicas():
    with pytest.raises(SystemExit):
        main(["serve-sim", "--model", "tiny-test", "--requests", "4",
              "--drain"])


def test_serve_sim_domains_need_chaos():
    with pytest.raises(SystemExit):
        main(["serve-sim", "--model", "tiny-test", "--requests", "4",
              "--replicas", "2", "--domains", "2"])


def test_serve_sim_hedge_needs_full_telemetry():
    with pytest.raises(SystemExit):
        main(["serve-sim", "--model", "tiny-test", "--requests", "4",
              "--replicas", "2", "--drain", "--hedge", "0.001",
              "--telemetry", "summary"])


def test_bench_serve_scaling_sweep(capsys):
    """The TP x DP grid on the bandwidth-bound model must scale."""
    code, out = run(capsys, "bench-serve", "--scaling-sweep",
                    "--requests", "6", "--max-batch", "4")
    assert code == 0
    assert "TP x DP scaling" in out
    assert "tensor-parallel scaling HOLDS" in out
    # All six grid points rendered.
    assert out.count("tok") >= 6
