"""Traffic profiler and datapath self-verification."""

import numpy as np
import pytest

from repro.config import GPT2_1_5B, LLAMA2_7B, W4A16_KV8
from repro.core.commands import CommandGenerator
from repro.core.verification import verify_datapath
from repro.errors import SimulationError
from repro.memory.profiler import profile_decode_step
from repro.packing.memimage import build_memory_image


@pytest.fixture(scope="module")
def descriptors():
    image = build_memory_image(LLAMA2_7B, W4A16_KV8, context=1024)
    gen = CommandGenerator(image)
    return gen.decode_step_descriptors(token_index=16, context=512)


class TestProfiler:
    def test_weights_dominate_bus_time(self, descriptors):
        profile = profile_decode_step(descriptors)
        assert profile.time_fraction("weights") > 0.9

    def test_kv_read_share_grows_with_context(self):
        image = build_memory_image(LLAMA2_7B, W4A16_KV8, context=1024)
        gen = CommandGenerator(image)
        small = profile_decode_step(gen.decode_step_descriptors(1, 64))
        large = profile_decode_step(gen.decode_step_descriptors(1, 1000))
        assert large.time_fraction("kv read") > small.time_fraction("kv read")

    def test_total_time_implies_token_rate(self, descriptors):
        """The profile's total bus time reproduces ~5 token/s."""
        profile = profile_decode_step(descriptors)
        tokens_per_s = 1e9 / profile.total_ns
        assert tokens_per_s == pytest.approx(5.1, abs=0.25)

    def test_buckets_cover_all_bytes(self, descriptors):
        profile = profile_decode_step(descriptors)
        assert profile.total_bytes == sum(d.size for d in descriptors)

    def test_render(self, descriptors):
        text = profile_decode_step(descriptors).render()
        assert "weights" in text and "total" in text

    def test_empty_stream_rejected(self):
        with pytest.raises(SimulationError):
            profile_decode_step([])

    def test_gpt2_image_profiles(self):
        """Ungated, tied-embedding model goes through the whole path."""
        from repro.config import QuantConfig

        # GPT-2's hidden size (1600) needs a group width that divides it.
        quant = QuantConfig(weight_group_size=64)
        image = build_memory_image(GPT2_1_5B, quant, context=512)
        gen = CommandGenerator(image)
        descs = gen.decode_step_descriptors(0, 128)
        gen.check_bounds(descs)
        profile = profile_decode_step(descs)
        assert profile.time_fraction("weights") > 0.8


class TestVerification:
    def test_tiny_model_passes(self, tiny_qweights):
        report = verify_datapath(tiny_qweights)
        assert report.passed, report.render()
        # 2 layers x 7 projections + lm_head.
        assert report.checked == 2 * 7 + 1
        assert report.worst_error < 0.02

    def test_render_mentions_status(self, tiny_qweights):
        text = verify_datapath(tiny_qweights).render()
        assert "PASS" in text

    def test_detects_corrupted_stored_bytes(self, tiny_qweights,
                                            tiny_quant):
        """Corrupting the DDR image's bytes must fail verification."""
        from repro.config import TINY_MODEL

        image = build_memory_image(TINY_MODEL, tiny_quant, context=64,
                                   qweights=tiny_qweights)
        streams = {name[len("weights."):]: data
                   for name, data in image.data.items()
                   if name.startswith("weights.")}
        clean = verify_datapath(tiny_qweights, streams=streams)
        assert clean.passed

        corrupted = bytearray(streams["layer0.wq"])
        corrupted[300] ^= 0xFF  # flip weight-code bits mid-superblock
        streams["layer0.wq"] = bytes(corrupted)
        report = verify_datapath(tiny_qweights, streams=streams)
        assert not report.passed
        assert any("layer0.wq" in f for f in report.failures)

    def test_tolerance_knob(self, tiny_qweights):
        strict = verify_datapath(tiny_qweights, tolerance=1e-9)
        # FP16 rounding differences exist, so an impossible tolerance
        # reports failures rather than silently passing.
        assert strict.checked == 15
