"""Model / quant / platform configuration and parameter accounting."""

import pytest

from repro.config import (
    CHATGLM_6B,
    GPT2_1_5B,
    KV260,
    LLAMA2_7B,
    MODEL_PRESETS,
    PLATFORM_PRESETS,
    TINY_MODEL,
    TINYLLAMA_1_1B,
    ModelConfig,
    PlatformConfig,
    QuantConfig,
    W4A16_KV8,
)
from repro.errors import ConfigError


class TestModelConfig:
    def test_llama2_7b_total_params(self):
        # LLaMA2-7B has 6.738e9 parameters.
        assert LLAMA2_7B.total_params() == pytest.approx(6.74e9, rel=0.01)

    def test_llama2_7b_decode_stream_params(self):
        # Everything but the embedding table: ~6.61e9.
        assert LLAMA2_7B.decode_stream_params() == pytest.approx(6.61e9,
                                                                 rel=0.01)

    def test_llama2_7b_head_dim(self):
        assert LLAMA2_7B.head_dim == 128

    def test_tinyllama_is_gqa(self):
        assert TINYLLAMA_1_1B.kv_heads == 4
        assert TINYLLAMA_1_1B.kv_dim == 4 * 64

    def test_tinyllama_param_count_is_1_1b(self):
        assert TINYLLAMA_1_1B.total_params() == pytest.approx(1.1e9, rel=0.02)

    def test_gpt2_ties_embeddings(self):
        assert GPT2_1_5B.lm_head_params() == 0
        assert GPT2_1_5B.total_params() == pytest.approx(1.56e9, rel=0.05)

    def test_chatglm_param_count(self):
        assert CHATGLM_6B.total_params() == pytest.approx(6.2e9, rel=0.03)

    def test_kv_bytes_per_token(self):
        # 2 (K,V) x 32 layers x 4096 dims x 1 byte = 256 KiB.
        assert LLAMA2_7B.kv_bytes_per_token(8) == 2 * 32 * 4096

    def test_with_context_copies(self):
        longer = LLAMA2_7B.with_context(2048)
        assert longer.max_context == 2048
        assert LLAMA2_7B.max_context == 1024

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ConfigError):
            ModelConfig(name="bad", hidden_size=100, num_layers=1,
                        num_heads=3, intermediate_size=64, vocab_size=10)

    def test_rejects_bad_gqa_grouping(self):
        with pytest.raises(ConfigError):
            ModelConfig(name="bad", hidden_size=64, num_layers=1,
                        num_heads=4, num_kv_heads=3,
                        intermediate_size=64, vocab_size=300)

    def test_layer_params_split(self):
        assert LLAMA2_7B.layer_params() == (LLAMA2_7B.attention_params()
                                            + LLAMA2_7B.mlp_params())

    def test_presets_registry(self):
        assert MODEL_PRESETS["LLaMA2-7B"] is LLAMA2_7B
        assert "tiny-test" in MODEL_PRESETS


class TestQuantConfig:
    def test_default_is_w4a16_kv8(self):
        assert W4A16_KV8.weight_bits == 4
        assert W4A16_KV8.activation_bits == 16
        assert W4A16_KV8.kv_bits == 8

    def test_effective_weight_bits(self):
        # 4 + (16 + 8) / 128 = 4.1875 stored bits per weight.
        assert W4A16_KV8.effective_weight_bits == pytest.approx(4.1875)

    def test_fp16_weights_have_no_overhead(self):
        assert QuantConfig(weight_bits=16,
                           kv_bits=16).effective_weight_bits == 16

    def test_kv_pack_is_32_bits(self):
        # Fig. 4B: 16-bit scale + 8-bit zero + 8-bit pad.
        assert W4A16_KV8.kv_pack_bits == 32

    def test_levels(self):
        assert W4A16_KV8.weight_levels() == 15
        assert W4A16_KV8.kv_levels() == 255

    def test_rejects_odd_weight_bits(self):
        with pytest.raises(ConfigError):
            QuantConfig(weight_bits=5)

    def test_rejects_bad_kv_bits(self):
        with pytest.raises(ConfigError):
            QuantConfig(kv_bits=3)


class TestPlatformConfig:
    def test_kv260_bandwidth(self):
        assert KV260.bandwidth_bytes_per_s == pytest.approx(19.2e9)

    def test_kv260_axi_matches_ddr(self):
        # 4 ports x 128 bit x 300 MHz = 19.2 GB/s, exactly the DDR peak.
        assert KV260.port_bandwidth_bytes_per_s == pytest.approx(19.2e9)

    def test_kv260_bus_bytes_per_cycle(self):
        assert KV260.bus_bytes_per_cycle == 64

    def test_kv260_reservation(self):
        assert KV260.usable_bytes() == KV260.dram_bytes - 1024 * 1024

    def test_platform_presets(self):
        assert PLATFORM_PRESETS["KV260"] is KV260
        assert PLATFORM_PRESETS["Jetson AGX Orin"].bandwidth_gbps == 204.8

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigError):
            PlatformConfig(name="bad", dram_bytes=1, bandwidth_gbps=0)
