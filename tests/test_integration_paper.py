"""Integration: every headline claim of the paper, in one place.

These tests are the reproduction contract — if they pass, the simulated
system exhibits the paper's results:

* Fig. 1  — 93.3% capacity (weights 3556 MB, KV 264 MB of 4096 MB)
* Table II — 5.8 token/s ceiling, ~4.9 token/s simulated, ~84.5% util
* Fig. 3  — no cycle penalties in the fused attention pipeline
* Fig. 4  — bus-aligned formats beat naive layouts by a large factor
* Table I — the design fits the KV260 at ~2/3 LUT utilization, 6.57 W
* Sec. VII-A — bare-metal is mandatory (Linux would not fit)
"""

import numpy as np
import pytest

from repro import (
    Accelerator,
    BareMetalSystem,
    KV260,
    LLAMA2_7B,
    W4A16_KV8,
    build_memory_image,
    estimate_power,
    estimate_resources,
    theoretical_tokens_per_s,
)
from repro.core.cyclemodel import CycleModel
from repro.core.pipeline import AttentionPipeline


class TestCapacityClaims:
    def test_93_percent_capacity(self):
        image = build_memory_image(LLAMA2_7B, W4A16_KV8, context=1024)
        assert image.capacity_utilization() == pytest.approx(0.933, abs=0.005)

    def test_linux_impossible(self):
        system = BareMetalSystem(KV260)
        assert system.fits(LLAMA2_7B, W4A16_KV8, 1024)
        assert not system.linux_would_fit(LLAMA2_7B, W4A16_KV8, 1024)


class TestSpeedClaims:
    def test_theoretical_5_8(self):
        assert theoretical_tokens_per_s(LLAMA2_7B, KV260, 4) == \
            pytest.approx(5.8, abs=0.05)

    def test_decoding_around_5_tokens(self):
        cm = CycleModel(LLAMA2_7B, W4A16_KV8, KV260)
        mid = cm.decode_step(512).tokens_per_s
        assert mid == pytest.approx(5.0, abs=0.2)

    def test_utilization_84_5(self):
        cm = CycleModel(LLAMA2_7B, W4A16_KV8, KV260)
        assert cm.decode_step(1023).utilization == pytest.approx(0.845,
                                                                 abs=0.02)


class TestDataflowClaims:
    def test_no_cycle_penalties(self):
        pipe = AttentionPipeline(LLAMA2_7B, W4A16_KV8)
        for ctx in (1, 64, 512, 1023):
            assert pipe.fused_schedule(ctx).exposed_misc_cycles == 0

    def test_fusion_buys_measurable_speed(self):
        cm = CycleModel(LLAMA2_7B, W4A16_KV8, KV260)
        fused = cm.decode_step(1023, "fused").tokens_per_s
        coarse = cm.decode_step(1023, "coarse").tokens_per_s
        assert fused / coarse > 1.05


class TestResourceClaims:
    def test_fits_kv260(self):
        report = estimate_resources()
        assert report.fits()
        assert report.utilization()["lut"] < 0.70

    def test_300mhz_power(self):
        assert estimate_power(estimate_resources(), 300e6) == \
            pytest.approx(6.57, abs=0.1)


class TestEndToEnd:
    def test_tiny_model_full_stack(self, tiny_qweights):
        """Functional decode on the simulated accelerator produces valid
        tokens with KV260 timing attached."""
        acc = Accelerator.from_quantized_weights(tiny_qweights)
        tokens, perf = acc.decode([256, 72, 101, 108], max_new_tokens=6)
        assert len(tokens) == 6
        assert all(isinstance(t, int) for t in tokens)
        # Tiny model, same bus: timing is dominated by tiny transfers, so
        # token rate must far exceed the 7B rate.
        assert perf.tokens_per_s > 100

    def test_functional_equals_standalone_pipeline(self, tiny_qweights):
        """Accelerator-driven generation equals the bare QuantizedModel."""
        from repro.model.quantized import QuantizedModel

        acc = Accelerator.from_quantized_weights(tiny_qweights)
        tokens_acc, _ = acc.decode([256, 5, 6], max_new_tokens=5)
        model = QuantizedModel(tiny_qweights)
        tokens_ref = model.generate([256, 5, 6], max_new_tokens=5)
        assert tokens_acc == tokens_ref

    def test_quantized_close_to_float_reference(self, tiny_weights,
                                                tiny_qweights):
        from repro.model.llama import ReferenceModel
        from repro.model.quantized import QuantizedModel

        ref = ReferenceModel(tiny_weights)
        hw = QuantizedModel(tiny_qweights)
        prompt = [256, 40, 41, 42]
        lr, _ = ref.prefill(prompt)
        lh, _ = hw.prefill(prompt)
        corr = np.corrcoef(np.asarray(lr),
                           np.asarray(lh, dtype=np.float64))[0, 1]
        assert corr > 0.9
