"""Interconnect link model: collective algebra and TP comm accounting."""

import pytest

from repro.cluster.interconnect import (
    AURORA_MESH,
    GIG_ETHERNET,
    TEN_GIG_ETHERNET,
    LinkSpec,
    TPCommModel,
    all_gather_cost,
    all_reduce_cost,
)
from repro.config import KV260, LLAMA2_7B, TINY_MODEL, W4A16_KV8
from repro.errors import SimulationError

RING = LinkSpec("test-ring", 1e9, 10e-6, "ring")
MESH = LinkSpec("test-mesh", 1e9, 10e-6, "all_to_all")


class TestCollectives:
    def test_single_device_is_free(self):
        for fn in (all_reduce_cost, all_gather_cost):
            cost = fn(RING, 1, 1 << 20)
            assert cost.time_s == 0.0 and cost.wire_bytes == 0.0

    def test_zero_payload_is_free(self):
        assert all_reduce_cost(RING, 4, 0).time_s == 0.0

    def test_ring_all_reduce_closed_form(self):
        n, payload = 4, 1 << 20
        cost = all_reduce_cost(RING, n, payload)
        steps = 2 * (n - 1)
        chunk = payload / n
        assert cost.steps == steps
        assert cost.time_s == pytest.approx(
            steps * (chunk / RING.bandwidth_bytes_per_s + RING.latency_s))
        assert cost.wire_bytes == pytest.approx(steps * chunk)

    def test_mesh_beats_ring_on_latency(self):
        """Same bandwidth term, but all-to-all pays two hops always."""
        ring = all_reduce_cost(RING, 8, 4096)
        mesh = all_reduce_cost(MESH, 8, 4096)
        assert mesh.time_s < ring.time_s
        assert mesh.wire_bytes == pytest.approx(ring.wire_bytes)

    def test_all_gather_is_half_an_all_reduce_on_ring(self):
        reduce = all_reduce_cost(RING, 4, 1 << 16)
        gather = all_gather_cost(RING, 4, 1 << 16)
        assert gather.time_s == pytest.approx(reduce.time_s / 2)

    def test_wire_bytes_grow_with_devices(self):
        costs = [all_reduce_cost(RING, n, 1 << 20).wire_bytes
                 for n in (2, 4, 8)]
        assert costs == sorted(costs)

    def test_bad_specs_raise(self):
        with pytest.raises(SimulationError):
            LinkSpec("bad", 0, 1e-6)
        with pytest.raises(SimulationError):
            LinkSpec("bad", 1e9, -1.0)
        with pytest.raises(SimulationError):
            LinkSpec("bad", 1e9, 1e-6, "torus")
        with pytest.raises(SimulationError):
            all_reduce_cost(RING, 0, 10)


class TestTPCommModel:
    def make(self, model=LLAMA2_7B, link=TEN_GIG_ETHERNET, tp=2):
        return TPCommModel(model, W4A16_KV8, link, tp, KV260.pl_freq_hz)

    def test_tp1_charges_nothing(self):
        comm = self.make(tp=1)
        assert comm.decode_step_cycles(8) == 0.0
        assert comm.prefill_cycles(64) == 0.0

    def test_decode_step_counts_two_reduces_per_layer(self):
        comm = self.make()
        cost = comm.decode_step_cost(1)
        reduce = all_reduce_cost(TEN_GIG_ETHERNET, 2, comm.hidden_bytes)
        gather = all_gather_cost(TEN_GIG_ETHERNET, 2, comm.logits_bytes)
        expected = 2 * LLAMA2_7B.num_layers * reduce.time_s + gather.time_s
        assert cost.time_s == pytest.approx(expected)

    def test_batch_amortizes_latency(self):
        """A batched all-reduce moves more bytes but far fewer hops than
        one collective per member."""
        comm = self.make(link=GIG_ETHERNET)
        batched = comm.decode_step_cost(8).time_s
        serial = 8 * comm.decode_step_cost(1).time_s
        assert batched < serial

    def test_prefill_gathers_logits_once(self):
        comm = self.make()
        two = comm.prefill_cost(2)
        one = comm.prefill_cost(1)
        gather = all_gather_cost(TEN_GIG_ETHERNET, 2, comm.logits_bytes)
        reduce = all_reduce_cost(TEN_GIG_ETHERNET, 2, comm.hidden_bytes)
        assert two.time_s - one.time_s == pytest.approx(
            2 * LLAMA2_7B.num_layers * reduce.time_s)
        assert one.time_s > gather.time_s  # but includes exactly one

    def test_cycles_follow_the_pl_clock(self):
        comm = self.make(model=TINY_MODEL)
        cost = comm.decode_step_cost(4)
        assert comm.decode_step_cycles(4) \
            == pytest.approx(cost.time_s * KV260.pl_freq_hz)

    def test_aurora_mesh_cheapest_on_small_payloads(self):
        tiny_gige = self.make(model=TINY_MODEL, link=GIG_ETHERNET, tp=4)
        tiny_mesh = self.make(model=TINY_MODEL, link=AURORA_MESH, tp=4)
        assert tiny_mesh.decode_step_cost(1).time_s \
            < tiny_gige.decode_step_cost(1).time_s
