"""Softmax variants: reference, three-pass hardware, online."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.numerics.softmax import (
    online_softmax,
    reference_softmax,
    three_pass_softmax,
)

finite_vectors = st.lists(
    st.floats(min_value=-30, max_value=30, allow_nan=False),
    min_size=1, max_size=64,
)


def test_reference_sums_to_one(rng):
    probs = reference_softmax(rng.standard_normal(100))
    assert probs.sum() == pytest.approx(1.0)


def test_reference_handles_large_values():
    # Stability: shifting by the max prevents overflow.
    probs = reference_softmax(np.array([1000.0, 1000.0]))
    assert np.allclose(probs, 0.5)


def test_reference_empty_raises():
    with pytest.raises(SimulationError):
        reference_softmax(np.array([]))


def test_three_pass_sums_to_one(rng):
    probs = three_pass_softmax(rng.standard_normal(64)).astype(np.float64)
    assert probs.sum() == pytest.approx(1.0, abs=0.02)


def test_three_pass_matches_reference(rng):
    x = rng.standard_normal(48) * 3
    hw = three_pass_softmax(x).astype(np.float64)
    ref = reference_softmax(np.float16(x).astype(np.float64))
    assert np.max(np.abs(hw - ref)) < 5e-3


def test_three_pass_monotonic(rng):
    # Larger score -> larger probability, regardless of rounding.
    x = np.sort(rng.standard_normal(32))
    probs = three_pass_softmax(x).astype(np.float64)
    assert np.all(np.diff(probs) >= -1e-6)


def test_three_pass_single_element():
    assert float(three_pass_softmax([3.0])[0]) == 1.0


def test_three_pass_empty_raises():
    with pytest.raises(SimulationError):
        three_pass_softmax([])


def test_three_pass_extreme_spread():
    # A -30 score should get (almost) zero without poisoning the rest.
    probs = three_pass_softmax([10.0, -30.0]).astype(np.float64)
    assert probs[0] == pytest.approx(1.0, abs=1e-3)
    assert probs[1] < 1e-3


def test_online_matches_reference(rng):
    x = rng.standard_normal(40)
    assert np.allclose(online_softmax(x), reference_softmax(x), atol=1e-12)


def test_online_empty_raises():
    with pytest.raises(SimulationError):
        online_softmax([])


@given(finite_vectors)
@settings(max_examples=60, deadline=None)
def test_three_pass_valid_distribution(values):
    probs = three_pass_softmax(values).astype(np.float64)
    assert np.all(probs >= 0)
    assert probs.sum() == pytest.approx(1.0, abs=0.05)


@given(finite_vectors)
@settings(max_examples=60, deadline=None)
def test_online_equals_reference(values):
    x = np.asarray(values)
    assert np.allclose(online_softmax(x), reference_softmax(x), atol=1e-9)
