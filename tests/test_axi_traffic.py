"""AXI port group and per-token traffic accounting."""

import pytest

from repro.config import KV260, LLAMA2_7B, TINYLLAMA_1_1B, W4A16_KV8
from repro.errors import ConfigError
from repro.memory.axi import AxiPortGroup
from repro.memory.traffic import decode_traffic, prefill_traffic


class TestAxiPortGroup:
    def test_paper_design_point(self):
        axi = AxiPortGroup(n_ports=4, port_bits=128, freq_hz=300e6)
        assert axi.bus_bits == 512
        assert axi.bytes_per_cycle == 64
        assert axi.bandwidth_bytes_per_s == pytest.approx(19.2e9)

    def test_four_ports_match_ddr(self):
        axi = AxiPortGroup(4, 128, 300e6)
        assert axi.is_bandwidth_matched(19.2e9)

    def test_two_ports_do_not_match(self):
        axi = AxiPortGroup(2, 128, 300e6)
        assert not axi.is_bandwidth_matched(19.2e9)

    def test_transfer_cycles(self):
        axi = AxiPortGroup(4, 128, 300e6)
        assert axi.transfer_cycles(6400) == 100

    def test_split_command_interleaves(self):
        axi = AxiPortGroup(4, 128, 300e6)
        subs = axi.split_command(0x1000, 256)
        assert [a for a, _ in subs] == [0x1000, 0x1010, 0x1020, 0x1030]
        assert all(size == 64 for _, size in subs)

    def test_split_rejects_unaligned(self):
        axi = AxiPortGroup(4, 128, 300e6)
        with pytest.raises(ConfigError):
            axi.split_command(0, 100)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            AxiPortGroup(n_ports=0)
        with pytest.raises(ConfigError):
            AxiPortGroup(port_bits=100)


class TestDecodeTraffic:
    def test_weight_bytes_dominate(self):
        t = decode_traffic(LLAMA2_7B, W4A16_KV8, context=512)
        assert t.weight_bytes > 0.9 * t.total_bytes

    def test_weight_code_bytes_are_3_3_gb(self):
        t = decode_traffic(LLAMA2_7B, W4A16_KV8, context=0)
        assert t.weight_code_bytes == pytest.approx(3.3e9, rel=0.01)

    def test_metadata_fraction(self):
        t = decode_traffic(LLAMA2_7B, W4A16_KV8, context=0)
        # (16+8)/128 bits over 4 bits = 4.69%.
        assert t.weight_meta_bytes / t.weight_code_bytes == pytest.approx(
            0.0469, abs=0.001)

    def test_kv_traffic_grows_linearly(self):
        t1 = decode_traffic(LLAMA2_7B, W4A16_KV8, context=256)
        t2 = decode_traffic(LLAMA2_7B, W4A16_KV8, context=512)
        assert t2.kv_read_bytes == pytest.approx(2 * t1.kv_read_bytes)

    def test_kv_write_independent_of_context(self):
        t1 = decode_traffic(LLAMA2_7B, W4A16_KV8, context=1)
        t2 = decode_traffic(LLAMA2_7B, W4A16_KV8, context=1000)
        assert t1.kv_write_bytes == t2.kv_write_bytes

    def test_reads_plus_writes_is_total(self):
        t = decode_traffic(LLAMA2_7B, W4A16_KV8, context=100)
        assert t.read_bytes + t.write_bytes == pytest.approx(t.total_bytes)

    def test_gqa_reduces_kv_traffic(self):
        full = decode_traffic(LLAMA2_7B, W4A16_KV8, context=512)
        gqa = decode_traffic(TINYLLAMA_1_1B, W4A16_KV8, context=512)
        # TinyLlama caches 4 of 32 heads: per-layer KV read is 8x smaller
        # than an MHA model of the same hidden size would need.
        per_layer_full = full.kv_read_bytes / LLAMA2_7B.num_layers
        per_layer_gqa = gqa.kv_read_bytes / TINYLLAMA_1_1B.num_layers
        assert per_layer_gqa < per_layer_full / 4

    def test_prefill_streams_weights_once(self):
        single = decode_traffic(LLAMA2_7B, W4A16_KV8, context=0)
        total = prefill_traffic(LLAMA2_7B, W4A16_KV8, prompt_len=64)
        assert total < 1.1 * single.weight_bytes + 64 * 1e6

    def test_per_token_bytes_at_1024_context(self):
        # The quantity behind the 4.9 token/s: ~3.74 GB must move per token.
        t = decode_traffic(LLAMA2_7B, W4A16_KV8, context=1023)
        assert t.total_bytes == pytest.approx(3.74e9, rel=0.02)
