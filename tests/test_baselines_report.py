"""Baseline entries and table/figure renderers."""

import pytest

from repro.baselines.entries import (
    OUR_ENTRY,
    TABLE_II_ENTRIES,
    TABLE_III_ENTRIES,
    all_entries,
)
from repro.report.figures import (
    ddr_burst_curve,
    fig1_memory_breakdown,
    fig2_phase_breakdown,
    fig3_pipeline_comparison,
    fig4_arrangement_comparison,
    fig5_component_throughput,
)
from repro.report.tables import (
    format_table,
    table1_resources,
    table2_fpga,
    table3_edge,
)


class TestBaselineEntries:
    def test_recomputed_theoretical_matches_paper(self):
        for e in TABLE_II_ENTRIES + TABLE_III_ENTRIES + (OUR_ENTRY,):
            if e.reported_theoretical is not None:
                assert e.theoretical_tokens_per_s == pytest.approx(
                    e.reported_theoretical, rel=0.05), e.name

    def test_recomputed_utilization_matches_paper(self):
        for e in TABLE_II_ENTRIES + TABLE_III_ENTRIES + (OUR_ENTRY,):
            if e.reported_utilization is not None:
                assert e.utilization == pytest.approx(
                    e.reported_utilization, abs=0.02), e.name

    def test_ours_has_best_utilization(self):
        """The paper's central comparison claim."""
        best_other = max(e.utilization
                         for e in TABLE_II_ENTRIES + TABLE_III_ENTRIES)
        assert OUR_ENTRY.utilization > best_other

    def test_utilization_ordering_table3(self):
        """NanoLLM Nano > NanoLLM AGX > TinyChat > llama.cpp > Pi."""
        by_name = {e.name: e.utilization for e in TABLE_III_ENTRIES}
        order = ["NanoLLM (Orin Nano)", "NanoLLM (AGX Orin)",
                 "TinyChat (AGX Orin)", "llama.cpp (AGX Orin)",
                 "llama.cpp (Pi)"]
        utils = [by_name[n] for n in order]
        assert all(a > b for a, b in zip(utils, utils[1:]))

    def test_all_entries_count(self):
        # 5 FPGA rows + 5 edge rows + ours.
        assert len(all_entries()) == 11


class TestTables:
    def test_table1_rows(self):
        rows, text = table1_resources()
        assert [r["component"] for r in rows] == ["MemCtrl", "VPU", "SPU",
                                                  "Total"]
        assert "6.57" in text  # paper power in the footer

    def test_table2_ours_wins(self):
        rows, text = table2_fpga()
        ours = rows[-1]
        assert ours["utilization"] > max(r["utilization"] for r in rows[:-1])
        assert "KV260" in text

    def test_table2_simulated_close_to_paper(self):
        rows, _ = table2_fpga()
        ours = rows[-1]
        assert ours["tokens_per_s"] == pytest.approx(4.9, abs=0.15)
        assert ours["utilization"] == pytest.approx(0.845, abs=0.02)

    def test_table3_ours_beats_nanollm(self):
        rows, _ = table3_edge()
        nano = next(r for r in rows if r["name"] == "NanoLLM (Orin Nano)")
        assert rows[-1]["utilization"] > nano["utilization"]

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")


class TestFigures:
    def test_fig1_capacity(self):
        fig = fig1_memory_breakdown()
        assert fig["utilization"] == pytest.approx(fig["paper_utilization"],
                                                   abs=0.005)
        assert fig["weights_mib"] == pytest.approx(fig["paper_weights_mib"],
                                                   rel=0.01)
        assert fig["kv_mib"] == pytest.approx(fig["paper_kv_mib"], rel=0.002)

    def test_fig2_phases(self):
        fig = fig2_phase_breakdown(prompt_len=8, new_tokens=4)
        # Prefill restreams weights per token: TTFT >> TOPT.
        assert fig["ttft_s"] > fig["topt_s"] * 4
        assert fig["prefill_ops_per_weight"] > fig["decode_ops_per_weight"]

    def test_fig3_fusion(self):
        fig = fig3_pipeline_comparison(context=512)
        assert fig["fused_all_hidden"]
        assert fig["fused_exposed_misc"] == 0
        assert fig["coarse_penalty"] > 0.03

    def test_fig4_arrangement(self):
        fig = fig4_arrangement_comparison(out_features=512, in_features=4096)
        assert fig["interleaved_efficiency"] > 0.9
        assert fig["efficiency_gain"] > 2
        assert fig["write_reduction"] == pytest.approx(16.0, rel=0.05)

    def test_fig5_rate_matching(self):
        fig = fig5_component_throughput()
        assert fig["rate_matched"]
        assert fig["mcu_bytes_per_cycle"] == 64

    def test_ddr_burst_curve_monotone(self):
        curves = ddr_burst_curve(burst_sizes=(64, 1024, 16384, 262144))
        scattered = list(curves["scattered"].values())
        assert all(a <= b for a, b in zip(scattered, scattered[1:]))
        assert max(curves["sequential"].values()) > 0.9
