"""Group quantization and bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant.groupquant import (
    dequantize_groups,
    pack_codes,
    quantization_error,
    quantize_groups,
    unpack_codes,
)


class TestQuantizeGroups:
    def test_shapes(self, rng):
        w = rng.standard_normal((8, 256))
        p = quantize_groups(w, bits=4, group_size=128)
        assert p.codes.shape == (8, 256)
        assert p.scales.shape == (8, 2)
        assert p.zeros.shape == (8, 2)
        assert p.n_groups == 2

    def test_codes_in_range(self, rng):
        p = quantize_groups(rng.standard_normal((4, 128)) * 10, bits=4,
                            group_size=64)
        assert p.codes.min() >= 0
        assert p.codes.max() <= 15

    def test_error_bounded_by_half_step(self, rng):
        w = rng.standard_normal((4, 128))
        p = quantize_groups(w, bits=4, group_size=32)
        w_hat = dequantize_groups(p, dtype=np.float64)
        grouped = w.reshape(4, 4, 32)
        steps = (grouped.max(axis=2) - grouped.min(axis=2)) / 15
        max_step = steps.max()
        # Scale is FP16-rounded, so allow a whisker beyond step/2.
        assert np.max(np.abs(w - w_hat)) <= max_step / 2 * 1.01 + 1e-3

    def test_more_bits_less_error(self, rng):
        w = rng.standard_normal((8, 128))
        e4 = quantization_error(w, quantize_groups(w, 4, 64))
        e8 = quantization_error(w, quantize_groups(w, 8, 64))
        assert e8 < e4 / 4

    def test_smaller_groups_less_error(self, rng):
        w = rng.standard_normal((8, 256)) * np.linspace(0.1, 5, 256)
        coarse = quantization_error(w, quantize_groups(w, 4, 256))
        fine = quantization_error(w, quantize_groups(w, 4, 32))
        assert fine < coarse

    def test_constant_group_is_exact(self):
        w = np.full((2, 64), 3.25)
        p = quantize_groups(w, 4, 64)
        assert np.allclose(dequantize_groups(p, np.float64), 3.25, atol=2e-3)

    def test_rejects_indivisible_groups(self, rng):
        with pytest.raises(QuantizationError):
            quantize_groups(rng.standard_normal((2, 100)), 4, 64)

    def test_rejects_non_2d(self, rng):
        with pytest.raises(QuantizationError):
            quantize_groups(rng.standard_normal(64), 4, 32)

    def test_rejects_bad_bits(self, rng):
        with pytest.raises(QuantizationError):
            quantize_groups(rng.standard_normal((2, 64)), 0, 32)

    def test_storage_bits(self, rng):
        p = quantize_groups(rng.standard_normal((4, 128)), 4, 128)
        # 512 weights x 4 bits + 4 groups x 24 bits metadata.
        assert p.storage_bits(16, 8) == 512 * 4 + 4 * 24


class TestPackCodes:
    def test_roundtrip_4bit(self, rng):
        codes = rng.integers(0, 16, size=333).astype(np.uint8)
        data = pack_codes(codes, 4)
        assert np.array_equal(unpack_codes(data, 4, 333), codes)

    def test_roundtrip_3bit(self, rng):
        codes = rng.integers(0, 8, size=100).astype(np.uint8)
        assert np.array_equal(unpack_codes(pack_codes(codes, 3), 3, 100),
                              codes)

    def test_packed_length(self):
        assert len(pack_codes(np.zeros(128, dtype=np.uint8), 4)) == 64

    def test_rejects_out_of_range(self):
        with pytest.raises(QuantizationError):
            pack_codes(np.array([16]), 4)

    def test_unpack_short_stream_raises(self):
        with pytest.raises(QuantizationError):
            unpack_codes(b"\x00", 4, 100)

    def test_known_nibble_order(self):
        # LSB-first: codes [0x1, 0x2] pack into byte 0x21.
        assert pack_codes(np.array([1, 2]), 4) == b"\x21"

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                    max_size=200),
           st.sampled_from([2, 3, 4, 5, 8]))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values, bits):
        codes = np.array([v % (1 << bits) for v in values], dtype=np.uint8)
        assert np.array_equal(
            unpack_codes(pack_codes(codes, bits), bits, len(codes)), codes)


@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.sampled_from([32, 64, 128]),
       st.sampled_from([2, 4, 8]))
@settings(max_examples=40, deadline=None)
def test_quant_dequant_code_roundtrip(seed, group, bits):
    """dequantize(quantize(w)) re-quantizes to identical codes (stability)."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((2, 2 * group))
    p = quantize_groups(w, bits, group)
    w_hat = dequantize_groups(p, np.float64)
    p2 = quantize_groups(w_hat, bits, group)
    # Allow off-by-one codes at bin boundaries from FP16 scale rounding.
    assert np.max(np.abs(p2.codes.astype(int) - p.codes.astype(int))) <= 1
