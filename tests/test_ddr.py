"""DDR4 burst-efficiency timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.memory.ddr import (
    DdrModel,
    DdrTimingParams,
    Transaction,
    stream_efficiency,
)


class TestTransaction:
    def test_valid(self):
        t = Transaction(address=0, size=64)
        assert not t.is_write

    def test_zero_size_rejected(self):
        with pytest.raises(SimulationError):
            Transaction(address=0, size=0)

    def test_negative_address_rejected(self):
        with pytest.raises(SimulationError):
            Transaction(address=-1, size=64)


class TestDdrModel:
    def test_large_sequential_stream_is_efficient(self):
        assert stream_efficiency(1 << 25, 1 << 20) > 0.93

    def test_scattered_small_reads_are_terrible(self):
        assert stream_efficiency(1 << 14, 4, stride=8192) < 0.01

    def test_efficiency_monotonic_in_burst_size(self):
        sizes = [64, 256, 1024, 4096, 65536]
        effs = [stream_efficiency(1 << 22, b, stride=b + 8192)
                for b in sizes]
        assert all(a < b for a, b in zip(effs, effs[1:]))

    def test_efficiency_never_exceeds_one(self):
        assert stream_efficiency(1 << 24, 1 << 22) < 1.0

    def test_contiguous_beats_scattered_at_same_size(self):
        seq = stream_efficiency(1 << 20, 4096)
        scat = stream_efficiency(1 << 20, 4096, stride=4096 + 8192)
        assert seq > scat

    def test_row_miss_counting(self):
        model = DdrModel()
        model.access(Transaction(address=0, size=64))
        model.access(Transaction(address=1 << 20, size=64))  # far away
        assert model.row_misses == 2

    def test_contiguous_continuation_no_extra_miss(self):
        model = DdrModel()
        model.access(Transaction(address=0, size=64))
        model.access(Transaction(address=64, size=64))
        assert model.row_misses == 1

    def test_turnaround_counted(self):
        model = DdrModel()
        model.access(Transaction(address=0, size=64, is_write=False))
        model.access(Transaction(address=64, size=64, is_write=True))
        assert model.turnarounds == 1

    def test_sub_burst_reads_waste_slots(self):
        # 4-byte reads still occupy 64-byte slots.
        model = DdrModel()
        model.access(Transaction(address=0, size=4))
        tiny = model.busy_ns
        model.reset()
        model.access(Transaction(address=0, size=64))
        full = model.busy_ns
        assert tiny == full

    def test_refresh_overhead_applied(self):
        model = DdrModel()
        model.access(Transaction(address=0, size=1 << 20))
        assert model.total_ns > model.busy_ns

    def test_no_transactions_raises(self):
        with pytest.raises(SimulationError):
            DdrModel().achieved_bytes_per_s()

    def test_peak_bandwidth_param_respected(self):
        slow = DdrTimingParams(peak_bytes_per_s=9.6e9)
        fast = DdrTimingParams(peak_bytes_per_s=19.2e9)
        a = DdrModel(slow)
        a.access(Transaction(address=0, size=1 << 20))
        b = DdrModel(fast)
        b.access(Transaction(address=0, size=1 << 20))
        assert a.total_ns > b.total_ns

    def test_stream_efficiency_rejects_bad_sizes(self):
        with pytest.raises(SimulationError):
            stream_efficiency(0, 64)


@given(st.integers(min_value=6, max_value=20))
@settings(max_examples=20, deadline=None)
def test_efficiency_increases_with_scattered_burst_size(log_burst):
    small = stream_efficiency(1 << 22, 1 << log_burst,
                              stride=(1 << log_burst) + 8192)
    bigger = stream_efficiency(1 << 22, 1 << (log_burst + 1),
                               stride=(1 << (log_burst + 1)) + 8192)
    assert bigger >= small
