"""Address map and allocator."""

import pytest

from repro.errors import CapacityError
from repro.memory.memmap import (
    HIGH_BASE,
    LOW_LIMIT,
    AddressMap,
    kv260_address_map,
)


def test_default_regions():
    amap = kv260_address_map()
    assert amap.free_bytes("low") == LOW_LIMIT
    assert amap.free_bytes("high") == 2 * 1024**3


def test_allocation_is_aligned():
    amap = AddressMap()
    amap.allocate("a", 100, "low")
    b = amap.allocate("b", 100, "low")
    assert b.start % 64 == 0
    assert b.start >= 128  # after a's padded footprint


def test_high_region_base():
    amap = AddressMap()
    alloc = amap.allocate("x", 64, "high")
    assert alloc.start == HIGH_BASE


def test_overflow_raises():
    amap = AddressMap()
    with pytest.raises(CapacityError):
        amap.allocate("big", 3 * 1024**3, "high")


def test_exact_fill():
    amap = AddressMap()
    amap.allocate("all", 2 * 1024**3, "high")
    with pytest.raises(CapacityError):
        amap.allocate("more", 64, "high")


def test_unknown_region_raises():
    with pytest.raises(CapacityError):
        AddressMap().allocate("x", 64, "middle")


def test_negative_size_raises():
    with pytest.raises(CapacityError):
        AddressMap().allocate("x", -1, "low")


def test_utilization_counts_against_raw_4gb():
    amap = AddressMap()
    amap.allocate("half", 2 * 1024**3, "high")
    assert amap.utilization() == pytest.approx(0.5)


def test_no_overlaps_reported_for_valid_allocations():
    amap = AddressMap()
    for i in range(10):
        amap.allocate(f"r{i}", 1000, "low")
    assert amap.overlaps() == []


def test_total_capacity():
    amap = AddressMap()
    # 4 GiB minus the 1 MiB compiler reservation.
    assert amap.total_capacity() == 4 * 1024**3 - 1024**2
