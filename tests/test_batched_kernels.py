"""Property tests: batched FP16 kernels are bit-identical to the
scalar reference oracles.

The tentpole claim of the vectorized simulator is *batch invariance*:
because every tile/tree reduction's rounding schedule depends only on
the reduction length, stacking any number of independent reductions of
equal length into one kernel call changes no bit anywhere.  These tests
pin that claim at every level — the rounding primitive, the tiled
kernels, softmax/RMSNorm/RoPE/KV8 helpers, and the whole model
(``forward_batch`` / ``prefill`` vs the per-token scalar path) — across
random shapes, lane counts, odd tile widths, and GQA group sizes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ModelConfig, QuantConfig
from repro.model.kvcache import QuantizedKVCache
from repro.model.quantized import QuantizedModel
from repro.model.weights import quantize_model, random_weights
from repro.numerics.fp16 import (fp16, fp16_batched_scores,
                                 fp16_batched_weighted_values, fp16_matmul,
                                 fp16_matmul_t, fp16_matvec, fp16_round_f32)
from repro.numerics.rmsnorm import batched_two_pass_rmsnorm, two_pass_rmsnorm
from repro.numerics.rope import HardwareRope
from repro.numerics.softmax import batched_three_pass_softmax, three_pass_softmax
from repro.quant.kv8 import (kv_dequantize, kv_dequantize_batch, kv_quantize,
                             kv_quantize_batch, KVQuantParams)

LANES = st.sampled_from([1, 2, 3, 7, 16, 64, 128, 129])
SCALES = st.sampled_from([1e-6, 1e-2, 1.0, 10.0, 1e4])


def arr(rng, *shape, scale=1.0):
    return rng.standard_normal(shape) * scale


def same(a, b) -> bool:
    """Bitwise-equal values (NaNs from FP16 overflow compare equal)."""
    return np.array_equal(np.asarray(a), np.asarray(b), equal_nan=True)


# ---------------------------------------------------------------------------
# the rounding primitive
# ---------------------------------------------------------------------------


class TestRoundF32:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 10_000))
    @settings(max_examples=200, deadline=None)
    def test_matches_half_casts_on_random_f32_bits(self, seed, n):
        """fp16_round_f32 == astype(float16).astype(float32), bitwise,
        for arbitrary finite/infinite float32 bit patterns."""
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        x = bits.view(np.float32)
        x = x[~np.isnan(x)]
        if x.size == 0:
            return
        with np.errstate(over="ignore"):
            want = x.astype(np.float16).astype(np.float32)
        got = fp16_round_f32(x)
        assert np.array_equal(want.view(np.uint32), got.view(np.uint32))

    def test_every_half_pattern_roundtrips(self):
        """All 2^16 float16 values are fixed points of the rounding."""
        halves = np.arange(2**16, dtype=np.uint16).view(np.float16)
        halves = halves[~np.isnan(halves)]
        x = halves.astype(np.float32)
        got = fp16_round_f32(x)
        assert np.array_equal(x.view(np.uint32), got.view(np.uint32))

    def test_boundaries(self):
        edges = np.array(
            [0.0, -0.0, 65504.0, 65519.99, 65520.0, -65520.0, np.inf,
             -np.inf, 6.103515625e-05, -6.103515625e-05, 5.96e-08,
             2.9802322e-08, -2.9802322e-08, 1e-45, -1e-45, 3.4e38, 1e-39],
            dtype=np.float32)
        with np.errstate(over="ignore"):
            want = edges.astype(np.float16).astype(np.float32)
        got = fp16_round_f32(edges)
        assert np.array_equal(want.view(np.uint32), got.view(np.uint32))

    def test_native_half_ufuncs_match_rounded_f32_ops(self):
        """NumPy's float16 add/mul equal compute-in-f32-then-round —
        the identity the native-f16 accumulator in fp16_tiled_reduce
        relies on — over every half bit pattern."""
        a = np.arange(2**16, dtype=np.uint16).view(np.float16)
        rng = np.random.default_rng(0)
        b = rng.integers(0, 2**16, size=a.size, dtype=np.uint16) \
            .view(np.float16)
        mask = ~(np.isnan(a) | np.isnan(b))
        a, b = a[mask], b[mask]
        with np.errstate(over="ignore", invalid="ignore"):
            for op in (np.add, np.multiply):
                native = op(a, b)
                rounded = op(a.astype(np.float32),
                             b.astype(np.float32)).astype(np.float16)
                ok = ~(np.isnan(native) & np.isnan(rounded))
                assert np.array_equal(native[ok].view(np.uint16),
                                      rounded[ok].view(np.uint16))


# ---------------------------------------------------------------------------
# tiled kernels
# ---------------------------------------------------------------------------


class TestTiledKernels:
    @given(st.integers(0, 10**9), st.integers(1, 40), st.integers(1, 300),
           st.integers(1, 9), LANES, SCALES)
    @settings(max_examples=120, deadline=None)
    def test_matmul_columns_equal_matvecs(self, seed, out_f, in_f, batch,
                                          lanes, scale):
        rng = np.random.default_rng(seed)
        w = arr(rng, out_f, in_f, scale=scale)
        x = arr(rng, in_f, batch)
        with np.errstate(over="ignore", invalid="ignore"):
            mm = fp16_matmul(w, x, lanes=lanes)
            mt = fp16_matmul_t(fp16(w).T, x, lanes=lanes)
            assert same(mm, mt)
            for j in range(batch):
                assert same(mm[:, j], fp16_matvec(w, x[:, j], lanes=lanes))

    @given(st.integers(0, 10**9), st.integers(1, 6), st.integers(1, 50),
           st.sampled_from([2, 4, 8, 64]), LANES)
    @settings(max_examples=100, deadline=None)
    def test_scores_and_weighted_values_equal_per_head(self, seed, heads,
                                                       length, d, lanes):
        rng = np.random.default_rng(seed)
        keys = arr(rng, heads, length, d)
        q = arr(rng, heads, d)
        values = arr(rng, heads, length, d)
        probs = rng.random((heads, length))
        scores = fp16_batched_scores(keys, q, lanes=lanes)
        weighted = fp16_batched_weighted_values(values, probs, lanes=lanes)
        for h in range(heads):
            assert same(scores[h], fp16_matvec(keys[h], q[h], lanes=lanes))
            assert same(weighted[h],
                        fp16_matvec(values[h].T, probs[h], lanes=lanes))


# ---------------------------------------------------------------------------
# softmax / rmsnorm / rope / kv8
# ---------------------------------------------------------------------------


class TestBatchedHelpers:
    @given(st.integers(0, 10**9), st.integers(1, 8), st.integers(1, 60),
           SCALES)
    @settings(max_examples=100, deadline=None)
    def test_softmax_rows(self, seed, rows, n, scale):
        rng = np.random.default_rng(seed)
        x = arr(rng, rows, n, scale=min(scale, 10.0))
        batched = batched_three_pass_softmax(x)
        for r in range(rows):
            assert np.array_equal(batched[r], three_pass_softmax(x[r]))

    @given(st.integers(0, 10**9), st.integers(1, 8), st.integers(1, 200),
           SCALES, st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_rmsnorm_rows(self, seed, rows, n, scale, weighted):
        rng = np.random.default_rng(seed)
        x = arr(rng, rows, n, scale=scale)
        w = arr(rng, n) if weighted else None
        batched = batched_two_pass_rmsnorm(x, w)
        for r in range(rows):
            assert np.array_equal(batched[r], two_pass_rmsnorm(x[r], w))

    @given(st.integers(0, 10**9), st.integers(1, 6), st.integers(1, 5),
           st.sampled_from([4, 8, 16, 64]))
    @settings(max_examples=60, deadline=None)
    def test_rope_rows(self, seed, rows, heads, d):
        rng = np.random.default_rng(seed)
        rope = HardwareRope(d)
        x = arr(rng, rows, heads, d)
        positions = [int(p) for p in rng.integers(0, 100, size=rows)]
        batched = rope.apply_many(x, positions)
        for r in range(rows):
            assert np.array_equal(batched[r],
                                  rope.apply(x[r], positions[r]))

    @given(st.integers(0, 10**9), st.integers(1, 8),
           st.sampled_from([2, 5, 16, 64]), SCALES)
    @settings(max_examples=100, deadline=None)
    def test_kv8_rows(self, seed, heads, d, scale):
        rng = np.random.default_rng(seed)
        x = arr(rng, heads, d, scale=scale)
        codes, scales, zeros = kv_quantize_batch(x)
        deq = kv_dequantize_batch(codes, scales, zeros)
        deq32 = kv_dequantize_batch(codes, scales, zeros, dtype=np.float32)
        assert np.array_equal(deq.astype(np.float32), deq32)
        for h in range(heads):
            want_codes, params = kv_quantize(x[h])
            assert np.array_equal(codes[h], want_codes)
            assert params.scale == scales[h]
            assert params.zero == int(zeros[h])
            assert np.array_equal(deq[h], kv_dequantize(want_codes, params))

    def test_reference_gather_matches_batched(self):
        """The per-position scalar gather oracle equals the vectorized
        per-head and all-head gathers bit for bit."""
        rng = np.random.default_rng(11)
        cfg = ModelConfig(name="gather-test", hidden_size=32, num_layers=2,
                          num_heads=4, num_kv_heads=2,
                          intermediate_size=48, vocab_size=64,
                          max_context=24)
        cache = QuantizedKVCache(cfg)
        for pos in range(10):
            for layer in range(cfg.num_layers):
                cache.append(layer,
                             arr(rng, cfg.kv_heads, cfg.head_dim),
                             arr(rng, cfg.kv_heads, cfg.head_dim), pos)
        for layer in range(cfg.num_layers):
            all_k = cache.keys_batch(layer, 10)
            all_k32 = cache.keys_batch(layer, 10, dtype=np.float32)
            assert np.array_equal(all_k.astype(np.float32), all_k32)
            for head in range(cfg.kv_heads):
                ref = cache.keys_reference(layer, head, 10)
                assert np.array_equal(ref, cache.keys(layer, head, 10))
                assert np.array_equal(ref, all_k[head])
                vref = cache.values_reference(layer, head, 10)
                assert np.array_equal(vref,
                                      cache.values(layer, head, 10))

    def test_kv_quantize_single_matches_batch_wrapper(self):
        rng = np.random.default_rng(5)
        v = rng.standard_normal(16)
        codes, params = kv_quantize(v)
        assert isinstance(params, KVQuantParams)
        assert np.array_equal(kv_dequantize(codes, params),
                              kv_dequantize_batch(codes[None],
                                                  np.array([params.scale]),
                                                  np.array([params.zero]))[0])


# ---------------------------------------------------------------------------
# whole-model batch invariance (including GQA)
# ---------------------------------------------------------------------------


def make_model(num_heads: int, kv_heads: int, seed: int = 3,
               hidden: int = 64, layers: int = 2) -> QuantizedModel:
    cfg = ModelConfig(name=f"prop-{num_heads}-{kv_heads}",
                      hidden_size=hidden, num_layers=layers,
                      num_heads=num_heads, num_kv_heads=kv_heads,
                      intermediate_size=hidden + 32, vocab_size=96,
                      max_context=48)
    quant = QuantConfig(weight_group_size=16)
    return QuantizedModel(quantize_model(random_weights(cfg, seed=seed),
                                         quant))


@pytest.mark.parametrize("num_heads,kv_heads", [(4, 4), (4, 2), (8, 2)])
class TestModelBatchInvariance:
    def test_prefill_matches_sequential_forward(self, num_heads, kv_heads):
        model = make_model(num_heads, kv_heads)
        prompt = [1, 9, 4, 17, 2, 33, 8]
        seq_cache = QuantizedKVCache(model.config,
                                     model.qweights.quant.kv_bits)
        logits = None
        for pos, tok in enumerate(prompt):
            logits = model.forward_token_reference(tok, seq_cache, pos)
        batched_logits, _ = model.prefill(prompt)
        assert np.array_equal(logits, batched_logits)

    def test_forward_batch_matches_reference(self, num_heads, kv_heads):
        model = make_model(num_heads, kv_heads)
        prompts = [[1, 5, 9], [2, 6], [3, 7, 11, 13], [4, 8]]
        caches, positions, tokens = [], [], []
        ref_caches = []
        for i, prompt in enumerate(prompts):
            logits, cache = model.prefill(prompt)
            caches.append(cache)
            _, ref_cache = model.prefill(prompt)
            ref_caches.append(ref_cache)
            positions.append(len(prompt))
            tokens.append(int(np.argmax(logits)))
        # three decode steps: mixed then converging context lengths
        for step in range(3):
            batched = model.forward_batch(tokens, caches, positions)
            for i in range(len(prompts)):
                ref = model.forward_token_reference(
                    tokens[i], ref_caches[i], positions[i])
                assert np.array_equal(batched[i], ref), (step, i)
            positions = [p + 1 for p in positions]
            tokens = [int(np.argmax(batched[i]))
                      for i in range(len(prompts))]

    def test_prefill_resume_matches_cold(self, num_heads, kv_heads):
        model = make_model(num_heads, kv_heads)
        prompt = [1, 9, 4, 17, 2, 33, 8, 12]
        _, warm = model.prefill(prompt[:5])
        resumed, _ = model.prefill(prompt, cache=warm, start=5)
        cold, _ = model.prefill(prompt)
        assert np.array_equal(resumed, cold)
