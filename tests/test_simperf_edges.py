"""Edge cases of the vectorized-kernel and fast-forward plumbing."""

import numpy as np
import pytest

from repro.config import TINY_MODEL, QuantConfig
from repro.engine import AnalyticalBackend, CycleModelBackend
from repro.errors import ConfigError, SimulationError
from repro.numerics.fp16 import (as_fp16_grid, fp16_matmul, fp16_matmul_t,
                                 fp16_matvec, fp16_tiled_reduce)
from repro.numerics.rope import HardwareRope
from repro.stats import percentile_nearest_rank, percentile_of_sorted


@pytest.fixture(scope="module")
def quant32():
    return QuantConfig(weight_group_size=32)


class TestKernelValidation:
    def test_matvec_shape_mismatch(self):
        with pytest.raises(ValueError, match="matvec shape"):
            fp16_matvec(np.zeros((3, 4)), np.zeros(5))

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError, match="matmul shape"):
            fp16_matmul(np.zeros((3, 4)), np.zeros((5, 2)))
        with pytest.raises(ValueError, match="matmul_t shape"):
            fp16_matmul_t(np.zeros((4, 3)), np.zeros((5, 2)))

    def test_tiled_reduce_axis_mismatch(self):
        with pytest.raises(ValueError, match="reduction axis"):
            fp16_tiled_reduce(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_grid_marker_passthrough(self):
        w = as_fp16_grid(np.ones((4, 3), dtype=np.float16))
        x = np.ones((3, 2), dtype=np.float16)
        assert np.array_equal(fp16_matmul(w, x),
                              fp16_matmul(np.ones((4, 3)), x))

    def test_rope_apply_many_arity(self):
        rope = HardwareRope(4)
        with pytest.raises(ConfigError, match="positions for"):
            rope.apply_many(np.zeros((3, 2, 4)), [0, 1])


class TestStepCycleValidation:
    @pytest.mark.parametrize("reference", [False, True])
    def test_batch_validations(self, quant32, reference):
        for backend in (CycleModelBackend(TINY_MODEL, quant32,
                                          reference_costs=reference),
                        AnalyticalBackend(TINY_MODEL, quant32,
                                          reference_costs=reference)):
            with pytest.raises(SimulationError):
                backend.step_cycles([])
            with pytest.raises(SimulationError):
                backend.step_cycles([4, -1])
            with pytest.raises(SimulationError):
                backend.step_cycles([4, 4], fetched=[1])
            with pytest.raises(SimulationError):
                backend.step_cycles([4], fetched=[5])
            with pytest.raises(SimulationError):
                backend.prefill_cycles(0)
            with pytest.raises(SimulationError):
                backend.prefill_cycles(4, start=4)

    def test_reference_costs_disable_fast_forward(self, quant32):
        from repro.engine import ContinuousBatchScheduler

        backend = CycleModelBackend(TINY_MODEL, quant32,
                                    reference_costs=True)
        engine = ContinuousBatchScheduler(backend, max_batch=2,
                                          kv_token_budget=64)
        assert not engine.fast_forward


class TestPercentiles:
    def test_sorted_variant_matches(self):
        vals = [5.0, 1.0, 3.0, 2.0, 4.0]
        for p in (0, 37, 50, 95, 100):
            assert percentile_of_sorted(sorted(vals), p) \
                == percentile_nearest_rank(vals, p)

    def test_errors(self):
        with pytest.raises(SimulationError):
            percentile_of_sorted([1.0], 101)
        with pytest.raises(SimulationError):
            percentile_of_sorted([], 50)
        with pytest.raises(SimulationError):
            percentile_nearest_rank([], 50)
