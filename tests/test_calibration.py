"""Activation statistics accumulator."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant.calibration import ActivationStats


def test_mean_abs_of_known_batch():
    stats = ActivationStats(3)
    stats.update(np.array([[1.0, -2.0, 3.0], [-1.0, 2.0, -3.0]]))
    assert np.allclose(stats.mean_abs(), [1.0, 2.0, 3.0])


def test_streaming_equals_batch(rng):
    a = rng.standard_normal((10, 8))
    b = rng.standard_normal((5, 8))
    streaming = ActivationStats(8)
    streaming.update(a)
    streaming.update(b)
    batch = ActivationStats(8)
    batch.update(np.concatenate([a, b]))
    assert np.allclose(streaming.mean_abs(), batch.mean_abs())


def test_empty_stats_are_ones():
    assert np.array_equal(ActivationStats(4).mean_abs(), np.ones(4))


def test_zero_channels_get_filled(rng):
    stats = ActivationStats(4)
    acts = np.abs(rng.standard_normal((20, 4))) + 0.1
    acts[:, 2] = 0.0
    stats.update(acts)
    mean = stats.mean_abs()
    assert mean[2] > 0  # never returns a zero that would break AWQ


def test_higher_dims_flattened(rng):
    stats = ActivationStats(8)
    stats.update(rng.standard_normal((2, 3, 8)))
    assert stats.count == 6


def test_channel_mismatch_raises(rng):
    stats = ActivationStats(8)
    with pytest.raises(QuantizationError):
        stats.update(rng.standard_normal((4, 7)))


def test_rejects_zero_channels():
    with pytest.raises(QuantizationError):
        ActivationStats(0)
