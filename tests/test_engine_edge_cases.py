"""Engine edge cases the PR 1 suite skipped, under block-granular KV.

Each test pins one awkward corner of the paged serving path: admission
when the pool is empty, requests that can never fit, identical prompts
racing into the same step, EOS landing on the prefill/decode boundary,
and preempted requests re-admitting through their own cached prefix.
"""

import pytest

from repro.config import TINY_MODEL, QuantConfig
from repro.engine import (
    ContinuousBatchScheduler,
    CycleModelBackend,
    FinishReason,
    FunctionalBackend,
    Request,
)
from repro.errors import CapacityError


@pytest.fixture(scope="module")
def quant32():
    return QuantConfig(weight_group_size=32)


def paged_engine(quant, n_blocks, block_size=4, max_batch=4, oracle=None):
    backend = CycleModelBackend(TINY_MODEL, quant, n_slots=max_batch,
                                kv_mode="paged", block_size=block_size,
                                n_kv_blocks=n_blocks, token_oracle=oracle)
    return ContinuousBatchScheduler(backend, max_batch=max_batch), backend


class TestBlockPressure:
    def test_preemption_under_zero_free_blocks(self, quant32):
        """A pool of 10 blocks cannot hold three growing sequences; the
        engine must preempt by block pressure yet finish everything."""
        engine, backend = paged_engine(quant32, n_blocks=10)
        reqs = [Request(i, (10 + i, 20 + i, 30 + i, 40 + i), 16)
                for i in range(3)]
        report = engine.run(reqs)
        assert report.preemptions > 0
        assert len(report.results) == 3
        assert all(len(r.tokens) == 16 for r in report.results)
        backend.paged_kv.audit()

    def test_request_longer_than_total_pool_rejected(self, quant32):
        engine, _ = paged_engine(quant32, n_blocks=3, block_size=4)
        # 13 prompt tokens + 1 decode token need 4 blocks; pool holds 3.
        with pytest.raises(CapacityError):
            engine.submit(Request(0, tuple(range(13)), 2))
        # 11 + 1 tokens exactly fill 3 blocks: admissible.
        engine.submit(Request(1, tuple(range(11)), 1))
        report = engine.run()
        assert report.results[0].tokens

    def test_lone_sequence_outgrowing_pool_retires(self, quant32):
        engine, backend = paged_engine(quant32, n_blocks=3, block_size=4,
                                       max_batch=1)
        report = engine.run([Request(0, (1, 2, 3, 4), 32)])
        result = report.results[0]
        assert result.finish_reason == FinishReason.LENGTH
        assert 0 < len(result.tokens) < 32
        assert len(result.decode_step_s) == len(result.tokens)
        backend.paged_kv.audit()
        assert backend.paged_kv.n_sequences == 0

    def test_paged_backend_enforces_slot_cap(self, quant32):
        """n_slots caps concurrency identically in both KV disciplines,
        even when the block pool could hold more sequences."""
        backend = CycleModelBackend(TINY_MODEL, quant32, n_slots=2,
                                    kv_mode="paged", block_size=4,
                                    n_kv_blocks=64)
        engine = ContinuousBatchScheduler(backend, max_batch=8)
        report = engine.run([Request(i, (1 + i, 2, 3), 6)
                             for i in range(5)])
        assert len(report.results) == 5
        assert report.max_batch_observed == 2

    def test_zero_token_overgrown_retirement_clears_ttft(self, quant32):
        """An over-budget retirement drops the sampled-but-never-
        forwarded tail token; when that token was the *first*, the
        first-token time must go with it — a result reporting zero
        tokens must report no TTFT, not the timestamp of a token it
        never delivered."""
        engine, backend = paged_engine(quant32, n_blocks=8)
        engine.submit(Request(0, (1, 2, 3), 8))
        engine._admit_ready()
        (state,) = engine.running
        assert state.generated and state.first_token_s is not None
        engine._retire_overgrown(state)
        assert state.finish_reason == FinishReason.LENGTH
        assert state.generated == [] and state.first_token_s is None
        assert not engine.running
        result = engine._report().results[0]
        assert result.tokens == () and result.ttft_s is None
        backend.paged_kv.audit()

    def test_preempted_request_readmits_through_own_prefix(self, quant32):
        """Preemption frees a sequence's blocks, but its committed prompt
        blocks stay cached — the recompute prefill skips them."""
        engine, backend = paged_engine(quant32, n_blocks=8, block_size=4,
                                       max_batch=2)
        reqs = [Request(i, tuple(range(1 + 8 * i, 9 + 8 * i)), 12)
                for i in range(2)]
        report = engine.run(reqs)
        assert report.preemptions > 0
        assert all(len(r.tokens) == 12 for r in report.results)
        # The preempted request's re-prefill found its own blocks.
        assert backend.paged_kv.prefix_reused_tokens > 0
        backend.paged_kv.audit()


class TestIdenticalPrompts:
    def test_same_prompt_admitted_same_step_shares_blocks(self,
                                                          tiny_qweights):
        prompt = tuple(range(1, 18))  # 17 tokens = 2 full blocks of 8 + 1
        backend = FunctionalBackend(tiny_qweights, n_slots=2,
                                    kv_mode="paged", block_size=8,
                                    n_kv_blocks=16)
        engine = ContinuousBatchScheduler(backend, max_batch=2)
        report = engine.run([Request(0, prompt, 4),
                             Request(1, prompt, 4)])
        (a, b) = sorted(report.results, key=lambda r: r.request_id)
        assert a.tokens == b.tokens  # greedy + same prompt + shared KV
        # Both were in one batch from the first step (same-step admit).
        assert report.max_batch_observed == 2
        # The second request reused the first's two full prompt blocks.
        assert backend.paged_kv.prefix_reused_tokens == 16
        backend.paged_kv.audit()

    def test_identical_prompts_use_fewer_blocks_than_private(self,
                                                             quant32):
        prompt = tuple(range(1, 18))
        engine, backend = paged_engine(quant32, n_blocks=16, block_size=8,
                                       max_batch=2)
        engine.submit(Request(0, prompt, 4))
        engine.submit(Request(1, prompt, 4))
        engine.step()
        kv = backend.paged_kv
        # Private storage would need 2 * ceil(18/8) = 6 blocks; sharing
        # the 2 full prompt blocks caps residency at 4.
        assert kv.n_total_blocks - kv.n_free_blocks == 4


class TestEosAtPrefillBoundary:
    def test_eos_on_first_sample_charges_no_decode(self, tiny_qweights):
        """The first sample fires the moment the last prefill chunk
        lands; an EOS there must retire the request with zero decode
        steps and release every block."""
        ref = FunctionalBackend(tiny_qweights, n_slots=1)
        eng = ContinuousBatchScheduler(ref, max_batch=1)
        eng.run([Request(0, (256, 1, 2), 1)])
        first = eng.finished[0].generated[0]

        backend = FunctionalBackend(tiny_qweights, n_slots=1,
                                    kv_mode="paged", block_size=4,
                                    n_kv_blocks=8)
        engine = ContinuousBatchScheduler(backend, max_batch=1)
        report = engine.run([Request(0, (256, 1, 2), 8, eos_id=first)])
        result = report.results[0]
        assert result.finish_reason == FinishReason.EOS
        assert list(result.tokens) == [first]
        assert result.decode_step_s == ()
        assert backend.paged_kv.n_sequences == 0
        backend.paged_kv.audit()

    def test_eos_mid_stream_frees_blocks_for_waiters(self, quant32):
        """An oracle EOS during decode releases blocks that admission
        immediately hands to the queued request."""
        def oracle(request_id, step):
            if request_id == 0 and step == 2:
                return 7  # EOS for request 0 only
            return 20 + request_id

        engine, backend = paged_engine(quant32, n_blocks=4, block_size=4,
                                       max_batch=2, oracle=oracle)
        reqs = [Request(0, (1, 2, 3, 4), 8, eos_id=7),
                Request(1, (5, 6, 7, 8), 4)]
        report = engine.run(reqs)
        by_id = {r.request_id: r for r in report.results}
        assert by_id[0].finish_reason == FinishReason.EOS
        assert len(by_id[0].tokens) == 3
        assert by_id[1].finish_reason == FinishReason.LENGTH
        assert len(by_id[1].tokens) == 4
        backend.paged_kv.audit()
        assert backend.paged_kv.n_free_blocks \
            + backend.paged_kv.n_reclaimable_blocks \
            == backend.paged_kv.n_total_blocks
