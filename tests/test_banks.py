"""Multi-bank DDR model and its agreement with the first-order model."""

import pytest

from repro.errors import SimulationError
from repro.memory.banks import BankedDdrModel, DdrBankParams
from repro.memory.ddr import stream_efficiency


@pytest.fixture()
def model():
    return BankedDdrModel()


class TestBankMechanics:
    def test_sequential_stream_is_efficient(self, model):
        ns = model.stream(0, 1 << 22)
        assert model.efficiency(ns) > 0.90

    def test_row_hit_needs_no_activate(self, model):
        model.read_burst(0)
        activates_before = model.activates
        model.read_burst(64)  # same 2 KiB page
        assert model.activates == activates_before

    def test_row_change_activates(self, model):
        model.read_burst(0)
        before = model.activates
        # Same bank, different row: stride = n_banks * row_bytes.
        p = model.params
        model.read_burst(p.n_banks * p.row_bytes)
        assert model.activates == before + 1

    def test_bank_interleave_mapping(self, model):
        p = model.params
        b0, _ = model._decode(0)
        b1, _ = model._decode(p.row_bytes)
        assert b0 != b1  # consecutive pages land in different banks

    def test_scattered_accesses_are_slow(self, model):
        seq_model = BankedDdrModel()
        seq_ns = seq_model.stream(0, 256 * 64)
        scat_ns = model.scattered(256, stride=1 << 20)
        assert scat_ns > 3 * seq_ns

    def test_faw_limits_activate_bursts(self):
        # Hammering different rows of different banks back-to-back must
        # run slower than tRRD alone would allow (tFAW kicks in).
        p = DdrBankParams()
        model = BankedDdrModel(p)
        end = model.scattered(8, stride=p.row_bytes)
        lower_bound = 4 * p.t_faw_ns / (1 - p.refresh_overhead) * 0.4
        assert end > lower_bound

    def test_rejects_bad_sizes(self, model):
        with pytest.raises(SimulationError):
            model.stream(0, 0)
        with pytest.raises(SimulationError):
            model.scattered(0, 64)
        with pytest.raises(SimulationError):
            model.efficiency(0)


class TestCrossValidation:
    """The detailed model justifies the first-order abstraction."""

    def test_streaming_ceiling_agrees(self):
        banked = BankedDdrModel()
        ns = banked.stream(0, 1 << 23)
        detailed = banked.efficiency(ns)
        simple = stream_efficiency(1 << 23, 1 << 20)
        assert detailed == pytest.approx(simple, abs=0.04)

    def test_scattered_collapse_agrees(self):
        banked = BankedDdrModel()
        ns = banked.scattered(1024, stride=1 << 16)
        detailed = banked.efficiency(ns)
        simple = stream_efficiency(1024 * 64, 64, stride=1 << 16)
        # Both models put scattered 64 B reads at a small fraction of peak.
        assert detailed < 0.25
        assert simple < 0.25

    def test_ordering_preserved(self):
        """Bigger scattered bursts -> better efficiency, in both models."""
        def banked_eff(burst):
            m = BankedDdrModel()
            total = 0.0
            for i in range(64):
                addr = i * (burst + (1 << 16))
                for b in range(burst // 64):
                    total = m.read_burst(addr + b * 64)
            return m.efficiency(total / (1 - m.params.refresh_overhead))

        effs = [banked_eff(b) for b in (64, 512, 4096)]
        assert effs[0] < effs[1] < effs[2]
