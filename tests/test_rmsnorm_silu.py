"""RMSNorm and SiLU: reference vs hardware variants."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.numerics.rmsnorm import reference_rmsnorm, two_pass_rmsnorm
from repro.numerics.silu import (
    hardware_gated_silu,
    hardware_silu,
    reference_silu,
)


class TestRmsNorm:
    def test_reference_unit_rms(self, rng):
        x = rng.standard_normal(512)
        out = reference_rmsnorm(x)
        assert np.sqrt(np.mean(out**2)) == pytest.approx(1.0, rel=1e-4)

    def test_reference_weight_scaling(self, rng):
        x = rng.standard_normal(64)
        w = np.full(64, 2.0)
        assert np.allclose(reference_rmsnorm(x, w),
                           2 * reference_rmsnorm(x))

    def test_two_pass_matches_reference(self, rng):
        x = rng.standard_normal(256)
        hw = two_pass_rmsnorm(x).astype(np.float64)
        ref = reference_rmsnorm(np.float16(x).astype(np.float64))
        assert np.max(np.abs(hw - ref)) < 0.01

    def test_two_pass_with_injected_square_sum(self, rng):
        # The DOT-engine-provided square sum must give the same answer as
        # the locally computed one.
        x = np.float16(rng.standard_normal(128))
        sq = float(np.sum(x.astype(np.float64) ** 2))
        a = two_pass_rmsnorm(x)
        b = two_pass_rmsnorm(x, square_sum=sq)
        assert np.array_equal(a, b)

    def test_two_pass_weight_length_mismatch(self, rng):
        with pytest.raises(SimulationError):
            two_pass_rmsnorm(rng.standard_normal(16), weight=np.ones(8))

    def test_two_pass_empty_raises(self):
        with pytest.raises(SimulationError):
            two_pass_rmsnorm([])

    def test_eps_prevents_blowup(self):
        out = two_pass_rmsnorm(np.zeros(32), eps=1e-5)
        assert np.all(np.isfinite(out.astype(np.float64)))


class TestSilu:
    def test_reference_known_values(self):
        assert reference_silu(0.0) == 0.0
        assert reference_silu(100.0) == pytest.approx(100.0)
        assert reference_silu(-100.0) == pytest.approx(0.0, abs=1e-10)

    def test_reference_minimum_location(self):
        # SiLU's minimum is near x = -1.278, value ~ -0.278.
        xs = np.linspace(-3, 1, 2001)
        ys = reference_silu(xs)
        assert ys.min() == pytest.approx(-0.278, abs=1e-3)

    def test_hardware_matches_reference(self, rng):
        x = rng.standard_normal(512) * 4
        hw = hardware_silu(x).astype(np.float64)
        ref = reference_silu(np.float16(x).astype(np.float64))
        assert np.max(np.abs(hw - ref)) < 0.02

    def test_gated_silu(self, rng):
        gate = rng.standard_normal(64)
        up = rng.standard_normal(64)
        out = hardware_gated_silu(gate, up).astype(np.float64)
        ref = reference_silu(np.float16(gate).astype(np.float64)) \
            * np.float16(up).astype(np.float64)
        assert np.max(np.abs(out - ref)) < 0.05

    def test_hardware_silu_is_fp16(self, rng):
        assert hardware_silu(rng.standard_normal(8)).dtype == np.float16
