"""Paged KV cache unit tests: pool, prefix cache, views, cost threading.

The property suite (:mod:`test_kv_properties`) fuzzes the invariants;
these tests pin the specific behaviours the engine depends on, plus the
``fetched`` plumbing through the cycle model and traffic accounting.
"""

import numpy as np
import pytest

from repro.config import KV260, TINY_MODEL, QuantConfig
from repro.core.cyclemodel import CycleModel
from repro.errors import CapacityError, ScheduleError, SimulationError
from repro.kv import PagedKVCache, blocks_for_tokens
from repro.memory.traffic import batched_decode_traffic
from repro.model.quantized import QuantizedModel


@pytest.fixture()
def kv():
    return PagedKVCache(TINY_MODEL, n_blocks=16, block_size=4)


@pytest.fixture(scope="module")
def quant32():
    return QuantConfig(weight_group_size=32)


def _fill(kv, seq, n, seed=0):
    rng = np.random.default_rng(seed)
    view = kv.view(seq)
    shape = (TINY_MODEL.kv_heads, TINY_MODEL.head_dim)
    for pos in range(n):
        for layer in range(TINY_MODEL.num_layers):
            view.append(layer, rng.normal(size=shape),
                        rng.normal(size=shape), pos)


class TestPoolBasics:
    def test_bad_sizes_rejected(self):
        with pytest.raises(SimulationError):
            PagedKVCache(TINY_MODEL, n_blocks=0, block_size=4)
        with pytest.raises(SimulationError):
            PagedKVCache(TINY_MODEL, n_blocks=4, block_size=0)

    def test_blocks_for_tokens(self):
        assert blocks_for_tokens(1, 4) == 1
        assert blocks_for_tokens(4, 4) == 1
        assert blocks_for_tokens(5, 4) == 2

    def test_blocks_for_budget_rounds_down_never_over(self):
        from repro.kv import blocks_for_budget

        assert blocks_for_budget(256, 16) == 16
        assert blocks_for_budget(23, 4) == 5  # partial block dropped
        with pytest.raises(SimulationError):
            blocks_for_budget(8, 16)  # sub-block budget would overcommit

    def test_accounting_cache_refuses_views(self):
        acc = PagedKVCache(TINY_MODEL, n_blocks=4, block_size=4,
                           store_data=False)
        seq = acc.allocate()
        with pytest.raises(SimulationError):
            acc.view(seq)

    def test_unknown_sequence_rejected(self, kv):
        with pytest.raises(SimulationError):
            kv.length(99)
        seq = kv.allocate()
        kv.free(seq)
        with pytest.raises(SimulationError):
            kv.free(seq)

    def test_pool_exhaustion_raises_capacity_error(self):
        acc = PagedKVCache(TINY_MODEL, n_blocks=2, block_size=4,
                           store_data=False)
        seq = acc.allocate()
        acc.advance(seq, 8)
        with pytest.raises(CapacityError):
            acc.advance(seq, 1)
        acc.audit()  # the failed advance must not corrupt accounting

    def test_non_contiguous_append_rejected(self, kv):
        seq = kv.allocate()
        view = kv.view(seq)
        shape = (TINY_MODEL.kv_heads, TINY_MODEL.head_dim)
        with pytest.raises(SimulationError):
            view.append(0, np.zeros(shape), np.zeros(shape), position=7)

    def test_read_of_unwritten_position_raises(self, kv):
        seq = kv.allocate()
        _fill(kv, seq, 2)
        with pytest.raises(SimulationError):
            kv.view(seq).keys(0, 0, 3)


class TestAdmissionArithmetic:
    def test_blocks_needed_counts_growth_token(self, kv):
        # 4 prompt tokens + 1 growth = 5 positions -> 2 blocks of 4.
        assert kv.blocks_needed([1, 2, 3, 4]) == 2
        assert kv.blocks_needed([1, 2, 3]) == 1

    def test_blocks_needed_after_commit(self, kv):
        prompt = list(range(9))
        seq = kv.allocate(tokens=prompt)
        _fill(kv, seq, 9)
        kv.commit_prefix(seq, prompt)
        # 2 full blocks cached; 10 positions = 3 blocks -> 1 fresh.
        assert kv.blocks_needed(prompt) == 1

    def test_admission_plan_pins_matched_reclaimable_blocks(self):
        acc = PagedKVCache(TINY_MODEL, n_blocks=3, block_size=4,
                           store_data=False)
        prompt = list(range(9))
        seq = acc.allocate(tokens=prompt)
        acc.advance(seq, 9)
        acc.commit_prefix(seq, prompt)
        acc.free(seq)
        # All three blocks resident: two committed (reclaimable), one
        # free.  A re-run of the same prompt matches the two cached
        # blocks, so they are pinned, not claimable supply.
        fresh, claimable = acc.admission_plan(prompt)
        assert fresh == 1
        assert claimable == 1
        # A *different* prompt gets no match: all three are claimable.
        fresh, claimable = acc.admission_plan([50] * 9)
        assert fresh == 3
        assert claimable == 3

    def test_prefix_sharing_disabled_is_fully_private(self):
        acc = PagedKVCache(TINY_MODEL, n_blocks=8, block_size=4,
                           store_data=False, prefix_sharing=False)
        prompt = list(range(9))
        a = acc.allocate(tokens=prompt)
        acc.advance(a, 9)
        acc.commit_prefix(a, prompt)  # no-op when sharing is off
        b = acc.allocate(tokens=prompt)
        assert acc.cached_length(b) == 0
        assert acc.blocks_needed(prompt) == 3
        assert len(acc.prefix.entries()) == 0


class TestPrefixCacheBehaviour:
    def test_register_keeps_incumbent_block(self, kv):
        prompt = list(range(8))
        a = kv.allocate(tokens=prompt)
        _fill(kv, a, 8, seed=1)
        b = kv.allocate(tokens=[*prompt])  # same content, no cache yet
        _fill(kv, b, 8, seed=1)
        kv.commit_prefix(a, prompt)
        kv.commit_prefix(b, prompt)  # must keep a's blocks as canonical
        c = kv.allocate(tokens=prompt + [9])
        assert kv.block_table(c)[:1] == kv.block_table(a)[:1]
        kv.audit()

    def test_lru_eviction_prefers_cold_entries(self):
        acc = PagedKVCache(TINY_MODEL, n_blocks=3, block_size=4,
                           store_data=False)
        old = [1] * 5
        hot = [2] * 5
        for prompt in (old, hot):
            seq = acc.allocate(tokens=prompt)
            acc.advance(seq, 5 - acc.cached_length(seq))
            acc.commit_prefix(seq, prompt)
            acc.free(seq)
        # Touch `hot` via a fresh match so `old` is the LRU entry.
        seq = acc.allocate(tokens=hot)
        assert acc.cached_length(seq) == 4
        acc.free(seq)
        # Pressure: a new 9-token sequence needs 3 blocks; only one is
        # free, so eviction must reclaim `old` first, then `hot`.
        seq = acc.allocate(tokens=[3] * 9)
        acc.advance(seq, 9)
        acc.audit()
        entries = set(acc.prefix.entries())
        assert len(entries) == 0  # both evicted under full pressure
        assert acc.prefix.evictions == 2

    def test_free_keeps_committed_blocks_resident(self, kv):
        prompt = list(range(8))
        seq = kv.allocate(tokens=prompt)
        _fill(kv, seq, 8)
        kv.commit_prefix(seq, prompt)
        kv.free(seq)
        assert kv.n_sequences == 0
        assert kv.n_reclaimable_blocks == 2
        again = kv.allocate(tokens=prompt + [40])
        assert kv.cached_length(again) == 8
        kv.audit()


class TestSharedDataIntegrity:
    def test_shared_blocks_serve_identical_kv(self, kv):
        prompt = list(range(8))
        a = kv.allocate(tokens=prompt)
        _fill(kv, a, 8, seed=3)
        kv.commit_prefix(a, prompt)
        b = kv.allocate(tokens=prompt + [9])
        assert kv.cached_length(b) == 8
        for head in range(TINY_MODEL.kv_heads):
            np.testing.assert_array_equal(
                kv.view(b).keys(1, head, 8), kv.view(a).keys(1, head, 8))

    def test_writer_extends_without_touching_shared(self, kv):
        prompt = list(range(8))
        a = kv.allocate(tokens=prompt)
        _fill(kv, a, 8, seed=4)
        kv.commit_prefix(a, prompt)
        b = kv.allocate(tokens=prompt + [9])
        before = kv.view(a).keys(0, 0, 8).copy()
        rng = np.random.default_rng(99)
        shape = (TINY_MODEL.kv_heads, TINY_MODEL.head_dim)
        for pos in (8, 9):
            for layer in range(TINY_MODEL.num_layers):
                kv.view(b).append(layer, rng.normal(size=shape),
                                  rng.normal(size=shape), pos)
        np.testing.assert_array_equal(kv.view(a).keys(0, 0, 8), before)
        assert kv.length(b) == 10 and kv.length(a) == 8
        kv.audit()


class TestFetchedCostThreading:
    def test_batched_schedule_fetched_reduces_cycles_and_bytes(self,
                                                               quant32):
        # Tiny model: attention is compute-bound, so skipping fetches
        # saves bytes but never cycles (the DOT still spans the context).
        cm = CycleModel(TINY_MODEL, quant32, KV260)
        full = cm.batched_decode_step([32, 32])
        shared = cm.batched_decode_step([32, 32], fetched=[32, 4])
        assert shared.cycles <= full.cycles
        assert shared.transfer_bytes < full.transfer_bytes
        # fetched == contexts is exactly the default.
        same = cm.batched_decode_step([32, 32], fetched=[32, 32])
        assert same.cycles == full.cycles

    def test_fetched_saves_cycles_when_bandwidth_bound(self):
        from repro.config import LLAMA2_7B, W4A16_KV8

        cm = CycleModel(LLAMA2_7B, W4A16_KV8, KV260)
        full = cm.batched_decode_step([512, 512])
        shared = cm.batched_decode_step([512, 512], fetched=[512, 0])
        assert shared.cycles < full.cycles
        assert shared.transfer_bytes < full.transfer_bytes

    def test_fetched_validation(self, quant32):
        cm = CycleModel(TINY_MODEL, quant32, KV260)
        with pytest.raises(ScheduleError):
            cm.batched_decode_step([8, 8], fetched=[8])
        with pytest.raises(ScheduleError):
            cm.batched_decode_step([8], fetched=[9])

    def test_batched_traffic_per_resident_block(self, quant32):
        shared = batched_decode_traffic(TINY_MODEL, quant32, [32, 32],
                                        fetched=[32, 4])
        private = batched_decode_traffic(TINY_MODEL, quant32, [32, 32])
        assert shared.kv_read_bytes < private.kv_read_bytes
        assert shared.shared_savings_bytes > 0
        assert private.shared_savings_bytes == 0
        assert shared.kv_write_bytes == private.kv_write_bytes
        assert shared.weight_bytes == private.weight_bytes
        with pytest.raises(SimulationError):
            batched_decode_traffic(TINY_MODEL, quant32, [])
        with pytest.raises(SimulationError):
            batched_decode_traffic(TINY_MODEL, quant32, [8], fetched=[9])

    def test_prefill_start_skips_leading_positions(self, quant32):
        cm = CycleModel(TINY_MODEL, quant32, KV260)
        full = cm.prefill_cycles(12)
        tail = cm.prefill_cycles(12, start=8)
        head = cm.prefill_cycles(8)
        assert full == pytest.approx(head + tail)
        with pytest.raises(SimulationError):
            cm.prefill_cycles(12, start=12)


class TestFunctionalPrefillResume:
    def test_prefill_start_matches_full_prefill(self, tiny_qweights):
        model = QuantizedModel(tiny_qweights)
        tokens = [256, 1, 2, 3, 4, 5]
        want, _ = model.prefill(tokens)
        logits, cache = model.prefill(tokens[:4])
        # Resume from position 4 on the same cache.
        got, _ = model.prefill(tokens, cache, start=4)
        np.testing.assert_array_equal(got, want)

    def test_prefill_start_validation(self, tiny_qweights):
        model = QuantizedModel(tiny_qweights)
        with pytest.raises(SimulationError):
            model.prefill([1, 2, 3], start=3)
        with pytest.raises(SimulationError):
            model.prefill([1, 2, 3], start=-1)
        fresh_cache = model.prefill([1])[1]
        with pytest.raises(SimulationError):
            # start beyond what the cache holds would read unwritten KV.
            model.prefill([1, 2, 3, 4], fresh_cache, start=2)
