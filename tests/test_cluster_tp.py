"""Sharded engine backends: timing composition and capacity scaling."""

import pytest

from repro.cluster import (
    GIG_ETHERNET,
    TEN_GIG_ETHERNET,
    ShardedAnalyticalBackend,
    ShardedCycleBackend,
    ShardedFunctionalBackend,
    derive_tp_kv_token_budget,
)
from repro.config import KV260, LLAMA2_7B, TINY_MODEL, W4A16_KV8, QuantConfig
from repro.engine import (
    AnalyticalBackend,
    ContinuousBatchScheduler,
    CycleModelBackend,
    Request,
    build_backend,
)
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def quant32():
    return QuantConfig(weight_group_size=32)


def tiny_trace():
    return [Request(i, (10 + i, 20 + i, 30 + i), max_new_tokens=5)
            for i in range(4)]


class TestShardedTiming:
    def test_tp1_cycle_backend_matches_unsharded_exactly(self, quant32):
        """Degenerate TP group: no comm, per-shard model == full model."""
        trace = tiny_trace()
        plain = CycleModelBackend(TINY_MODEL, quant32, n_slots=4)
        sharded = ShardedCycleBackend(TINY_MODEL, quant32, tp=1)
        t_plain = ContinuousBatchScheduler(
            plain, max_batch=4, kv_token_budget=256).run(trace).total_time_s
        t_sharded = ContinuousBatchScheduler(
            sharded, max_batch=4, kv_token_budget=256).run(trace).total_time_s
        assert t_plain == t_sharded

    def test_7b_step_splits_weights_plus_comm(self):
        """One TP=2 step = half the weight/KV stream + the collectives."""
        plain = CycleModelBackend(LLAMA2_7B, W4A16_KV8)
        sharded = ShardedCycleBackend(LLAMA2_7B, W4A16_KV8, tp=2,
                                      interconnect=TEN_GIG_ETHERNET)
        contexts = [512] * 4
        shard_only = sharded.step_cycles(contexts) \
            - sharded.comm.decode_step_cycles(4)
        full = plain.step_cycles(contexts)
        # The shard streams half the projections but all the norms and
        # per-member misc, so it sits just above full/2.
        assert full / 2 < shard_only < full * 0.6
        assert sharded.step_cycles(contexts) > shard_only

    def test_7b_tp_decode_is_faster_but_sublinear(self):
        steps = {}
        for tp in (1, 2, 4):
            backend = ShardedCycleBackend(LLAMA2_7B, W4A16_KV8, tp=tp,
                                          interconnect=TEN_GIG_ETHERNET)
            steps[tp] = backend.step_cycles([512] * 4)
        assert steps[2] < steps[1] and steps[4] < steps[2]
        assert steps[1] / steps[2] < 2.0
        assert steps[1] / steps[4] < 4.0

    def test_slower_link_costs_more(self):
        fast = ShardedCycleBackend(LLAMA2_7B, W4A16_KV8, tp=2,
                                   interconnect=TEN_GIG_ETHERNET)
        slow = ShardedCycleBackend(LLAMA2_7B, W4A16_KV8, tp=2,
                                   interconnect=GIG_ETHERNET)
        assert slow.step_cycles([128]) > fast.step_cycles([128])

    def test_prefill_charges_comm_only_for_computed_positions(self, quant32):
        backend = ShardedCycleBackend(TINY_MODEL, quant32, tp=2)
        full = backend.prefill_cycles(8)
        resumed = backend.prefill_cycles(8, start=4)
        assert resumed < full
        comm4 = backend.comm.prefill_cycles(4)
        comm8 = backend.comm.prefill_cycles(8)
        assert full - comm8 > resumed - comm4

    def test_analytical_step_follows_tp(self):
        """The sharded roofline's single step shrinks with tp but never
        by the full factor (replicated norms + comm keep it above)."""
        steps = {}
        for tp in (1, 2):
            backend = ShardedAnalyticalBackend(
                LLAMA2_7B, W4A16_KV8, tp=tp,
                interconnect=TEN_GIG_ETHERNET) if tp > 1 \
                else AnalyticalBackend(LLAMA2_7B, W4A16_KV8)
            steps[tp] = backend.step_cycles([512] * 4)
        assert steps[1] / 2 < steps[2] < steps[1]


class TestShardedCapacity:
    def test_budget_grows_superlinearly_with_tp(self):
        budgets = [derive_tp_kv_token_budget(LLAMA2_7B, W4A16_KV8, KV260,
                                             tp, cap_tokens=10**9)
                   for tp in (1, 2, 4)]
        assert budgets[1] > 2 * budgets[0]
        assert budgets[2] > 2 * budgets[1]

    def test_scheduler_uses_sharded_budget(self):
        plain = ContinuousBatchScheduler(
            CycleModelBackend(LLAMA2_7B, W4A16_KV8, n_slots=4), max_batch=4)
        sharded = ContinuousBatchScheduler(
            ShardedCycleBackend(LLAMA2_7B, W4A16_KV8, tp=2, n_slots=4),
            max_batch=4)
        assert sharded.kv_token_budget > plain.kv_token_budget

    def test_paged_pool_sized_from_sharded_budget(self):
        # n_slots=8 puts the concurrency cap (8192 tokens) above the
        # single-device DRAM budget, so the sharded headroom can show.
        plain = CycleModelBackend(LLAMA2_7B, W4A16_KV8, n_slots=8,
                                  kv_mode="paged")
        sharded = ShardedCycleBackend(LLAMA2_7B, W4A16_KV8, tp=2,
                                      n_slots=8, kv_mode="paged")
        assert sharded.paged_kv.n_total_blocks > plain.paged_kv.n_total_blocks


    def test_scheduler_forwards_custom_system_to_sharded_budget(self):
        """A caller-supplied capacity model must reach the sharded
        budget derivation, not be silently replaced by the default."""
        from repro.runtime.baremetal import BareMetalSystem

        starved = BareMetalSystem(KV260, os_reserved_bytes=2 * 2**30)
        backend = ShardedCycleBackend(LLAMA2_7B, W4A16_KV8, tp=2,
                                      n_slots=4)
        default = ContinuousBatchScheduler(backend, max_batch=4)
        custom = ContinuousBatchScheduler(
            ShardedCycleBackend(LLAMA2_7B, W4A16_KV8, tp=2, n_slots=4),
            system=starved, max_batch=4)
        assert custom.kv_token_budget < default.kv_token_budget


class TestScalingSweepBaseline:
    def test_custom_grid_baselines_on_fewest_boards(self, quant32):
        from repro.cluster import scaling_sweep

        points = scaling_sweep(TINY_MODEL, quant32, tp_values=(4, 2),
                               dp_values=(1,), n_requests=4, max_batch=2)
        by_tp = {p.tp: p for p in points}
        # tp=2 is the fewest-board point even though tp=4 ran first.
        assert by_tp[2].speedup == 1.0
        assert by_tp[2].baseline_boards == 2
        assert by_tp[4].speedup \
            == by_tp[4].aggregate_tokens_per_s \
            / by_tp[2].aggregate_tokens_per_s


class TestShardedFunctionalGuards:
    def test_misaligned_model_refused(self):
        """7B rows outrun the FP16 accumulation tree: sharded math would
        drift, so the functional group must refuse."""
        from repro.cluster.sharding import functional_reduction_is_exact

        assert not functional_reduction_is_exact(LLAMA2_7B, 2)
        # (Constructing 7B functional weights is too heavy for a test;
        # the predicate is what the constructor enforces.)

    def test_paged_functional_audits_clean(self, tiny_qweights):
        backend = ShardedFunctionalBackend(tiny_qweights, tp=2,
                                           kv_mode="paged", block_size=8,
                                           n_kv_blocks=32)
        engine = ContinuousBatchScheduler(backend, max_batch=4)
        report = engine.run(tiny_trace())
        assert len(report.results) == 4
        backend.paged_kv.audit()
        for worker in backend.workers:
            worker.kv.audit()

    def test_worker_prefix_reuse_mirrors_accounting(self, tiny_qweights):
        system = tuple(range(1, 17))
        reqs = [Request(i, system + (40 + i,), max_new_tokens=3)
                for i in range(3)]
        backend = ShardedFunctionalBackend(tiny_qweights, tp=2,
                                           kv_mode="paged", block_size=8,
                                           n_kv_blocks=32)
        engine = ContinuousBatchScheduler(backend, max_batch=2)
        engine.run(reqs)
        reused = backend.paged_kv.prefix_reused_tokens
        assert reused > 0
        for worker in backend.workers:
            assert worker.kv.prefix_reused_tokens == reused


class TestBuildBackendFactory:
    def test_dispatches_sharded_kinds(self, quant32):
        backend = build_backend("cycle", TINY_MODEL, quant32, tp=2)
        assert isinstance(backend, ShardedCycleBackend)
        backend = build_backend("analytical", TINY_MODEL, quant32, tp=2)
        assert isinstance(backend, ShardedAnalyticalBackend)

    def test_dispatches_plain_kinds(self, quant32):
        backend = build_backend("cycle", TINY_MODEL, quant32)
        assert isinstance(backend, CycleModelBackend)
        assert not isinstance(backend, ShardedCycleBackend)
        backend = build_backend("analytical", TINY_MODEL, quant32)
        assert isinstance(backend, AnalyticalBackend)

    def test_functional_without_weights_raises(self, quant32):
        with pytest.raises(SimulationError):
            build_backend("functional", TINY_MODEL, quant32, tp=2)

    def test_functional_with_weights(self, tiny_qweights, quant32):
        backend = build_backend("functional", TINY_MODEL, quant32, tp=2,
                                qweights=tiny_qweights)
        assert isinstance(backend, ShardedFunctionalBackend)

    def test_unknown_kind_raises(self, quant32):
        with pytest.raises(SimulationError):
            build_backend("spice", TINY_MODEL, quant32)
