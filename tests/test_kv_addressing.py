"""KV-cache address layouts (head-major, token-major, paged)."""

import pytest

from repro.config import LLAMA2_7B, W4A16_KV8
from repro.errors import LayoutError
from repro.packing.kv_addressing import KVAddressMap


@pytest.fixture(scope="module")
def head_major():
    return KVAddressMap(LLAMA2_7B, W4A16_KV8, base=0x1000,
                        layout="head-major", max_context=1024)


@pytest.fixture(scope="module")
def token_major():
    return KVAddressMap(LLAMA2_7B, W4A16_KV8, base=0x1000,
                        layout="token-major", max_context=1024)


def test_region_size_identical(head_major, token_major):
    assert head_major.region_bytes == token_major.region_bytes
    assert head_major.region_bytes == 1024 * 32 * 128  # ctx x heads x dim


def test_no_address_collisions(head_major, token_major):
    for amap in (head_major, token_major):
        seen = set()
        for head in range(0, 32, 7):
            for token in range(0, 1024, 101):
                addr = amap.address(head, token)
                assert addr not in seen
                seen.add(addr)
                assert 0x1000 <= addr < 0x1000 + amap.region_bytes


def test_head_major_history_contiguous(head_major):
    txns = head_major.head_read_transactions(3, 512)
    assert len(txns) == 1
    assert txns[0].size == 512 * 128


def test_token_major_history_strided(token_major):
    txns = token_major.head_read_transactions(3, 512)
    assert len(txns) == 512
    assert all(t.size == 128 for t in txns)


def test_head_major_write_scatters(head_major):
    txns = head_major.token_write_transactions(100)
    assert len(txns) == 32


def test_token_major_write_contiguous(token_major):
    txns = token_major.token_write_transactions(100)
    assert len(txns) == 1
    assert txns[0].size == 32 * 128


def test_read_cost_asymmetry(head_major, token_major):
    """The design argument: reads dominate, so head-major wins."""
    hm_read, hm_write = head_major.read_write_cost(512)
    tm_read, tm_write = token_major.read_write_cost(512)
    # Head-major reads are much faster; its writes are worse, but writes
    # are one token against 512 read back.
    assert hm_read < tm_read / 3
    assert hm_write > tm_write
    assert (hm_read + hm_write) < (tm_read + tm_write)


def test_bad_layout_rejected():
    with pytest.raises(LayoutError):
        KVAddressMap(LLAMA2_7B, W4A16_KV8, layout="diagonal")


def test_out_of_range_rejected(head_major):
    with pytest.raises(LayoutError):
        head_major.address(99, 0)
    with pytest.raises(LayoutError):
        head_major.address(0, 5000)
    with pytest.raises(LayoutError):
        head_major.head_read_transactions(0, 0)


# -- paged (block-indirection) layout ---------------------------------------

@pytest.fixture(scope="module")
def paged():
    # 1024-token context in 64-token blocks; the table scatters logical
    # blocks across the physical region (reverse order is the extreme).
    table = tuple(reversed(range(16)))
    return KVAddressMap(LLAMA2_7B, W4A16_KV8, base=0x1000, layout="paged",
                        max_context=1024, block_size=64, block_table=table)


def test_paged_region_and_no_collisions(paged, head_major):
    assert paged.region_bytes == head_major.region_bytes
    seen = set()
    for head in range(0, 32, 7):
        for token in range(0, 1024, 101):
            addr = paged.address(head, token)
            assert addr not in seen
            seen.add(addr)
            assert 0x1000 <= addr < 0x1000 + paged.region_bytes


def test_paged_indirection_follows_block_table(paged):
    # Token 0 lives in physical block 15 (reversed table); token 64 in 14.
    assert paged.address(0, 0) == 0x1000 + 15 * paged.block_bytes
    assert paged.address(0, 64) == 0x1000 + 14 * paged.block_bytes
    # Within a block, tokens of one head are contiguous.
    assert paged.address(0, 1) - paged.address(0, 0) == paged.head_bytes


def test_paged_read_is_one_burst_per_block(paged, head_major, token_major):
    txns = paged.head_read_transactions(3, 512)
    assert len(txns) == 512 // 64  # one per resident block
    assert all(t.size == 64 * paged.head_bytes for t in txns)
    # Partial trailing block shrinks the last burst.
    txns = paged.head_read_transactions(3, 130)
    assert len(txns) == 3
    assert txns[-1].size == 2 * paged.head_bytes
    # Cost sits between the clean head-major burst and token-major chaos.
    pg_read, _ = paged.read_write_cost(512)
    hm_read, _ = head_major.read_write_cost(512)
    tm_read, _ = token_major.read_write_cost(512)
    assert hm_read <= pg_read < tm_read


def test_paged_write_scatters_per_head(paged):
    txns = paged.token_write_transactions(5)
    assert len(txns) == LLAMA2_7B.kv_heads
    assert all(t.is_write for t in txns)


def test_paged_layout_validation():
    with pytest.raises(LayoutError):  # no table
        KVAddressMap(LLAMA2_7B, W4A16_KV8, layout="paged", block_size=64)
    with pytest.raises(LayoutError):  # table too short for the context
        KVAddressMap(LLAMA2_7B, W4A16_KV8, layout="paged", max_context=1024,
                     block_size=64, block_table=(0, 1, 2))
    with pytest.raises(LayoutError):  # blocks on a non-paged layout
        KVAddressMap(LLAMA2_7B, W4A16_KV8, layout="head-major",
                     block_size=64, block_table=tuple(range(16)))
    with pytest.raises(LayoutError):  # bad block size
        KVAddressMap(LLAMA2_7B, W4A16_KV8, layout="paged", max_context=64,
                     block_size=0, block_table=(0,))
