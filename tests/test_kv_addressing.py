"""KV-cache address layouts (head-major vs token-major)."""

import pytest

from repro.config import LLAMA2_7B, W4A16_KV8
from repro.errors import LayoutError
from repro.packing.kv_addressing import KVAddressMap


@pytest.fixture(scope="module")
def head_major():
    return KVAddressMap(LLAMA2_7B, W4A16_KV8, base=0x1000,
                        layout="head-major", max_context=1024)


@pytest.fixture(scope="module")
def token_major():
    return KVAddressMap(LLAMA2_7B, W4A16_KV8, base=0x1000,
                        layout="token-major", max_context=1024)


def test_region_size_identical(head_major, token_major):
    assert head_major.region_bytes == token_major.region_bytes
    assert head_major.region_bytes == 1024 * 32 * 128  # ctx x heads x dim


def test_no_address_collisions(head_major, token_major):
    for amap in (head_major, token_major):
        seen = set()
        for head in range(0, 32, 7):
            for token in range(0, 1024, 101):
                addr = amap.address(head, token)
                assert addr not in seen
                seen.add(addr)
                assert 0x1000 <= addr < 0x1000 + amap.region_bytes


def test_head_major_history_contiguous(head_major):
    txns = head_major.head_read_transactions(3, 512)
    assert len(txns) == 1
    assert txns[0].size == 512 * 128


def test_token_major_history_strided(token_major):
    txns = token_major.head_read_transactions(3, 512)
    assert len(txns) == 512
    assert all(t.size == 128 for t in txns)


def test_head_major_write_scatters(head_major):
    txns = head_major.token_write_transactions(100)
    assert len(txns) == 32


def test_token_major_write_contiguous(token_major):
    txns = token_major.token_write_transactions(100)
    assert len(txns) == 1
    assert txns[0].size == 32 * 128


def test_read_cost_asymmetry(head_major, token_major):
    """The design argument: reads dominate, so head-major wins."""
    hm_read, hm_write = head_major.read_write_cost(512)
    tm_read, tm_write = token_major.read_write_cost(512)
    # Head-major reads are much faster; its writes are worse, but writes
    # are one token against 512 read back.
    assert hm_read < tm_read / 3
    assert hm_write > tm_write
    assert (hm_read + hm_write) < (tm_read + tm_write)


def test_bad_layout_rejected():
    with pytest.raises(LayoutError):
        KVAddressMap(LLAMA2_7B, W4A16_KV8, layout="diagonal")


def test_out_of_range_rejected(head_major):
    with pytest.raises(LayoutError):
        head_major.address(99, 0)
    with pytest.raises(LayoutError):
        head_major.address(0, 5000)
    with pytest.raises(LayoutError):
        head_major.head_read_transactions(0, 0)
