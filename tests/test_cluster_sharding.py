"""Tensor-parallel sharding: shapes, accounting, and layout tiling.

The load-bearing invariant: ``tp`` per-shard weight streams and KV
regions tile back to the unsharded image exactly — in parameter counts,
in bytes, and bit-for-bit through the interleaved superblock encoding.
"""

import numpy as np
import pytest

from repro.cluster.sharding import (
    PROJECTION_AXES,
    functional_reduction_is_exact,
    projection_shapes,
    shard_functional_weights,
    shard_kv_bytes_per_token,
    shard_model_config,
    shard_quant_params,
    shard_stream_params,
    unshard_quant_params,
    validate_kv_tiling,
    validate_shard_tiling,
    validate_tp,
)
from repro.config import (LLAMA2_7B, SMALL_MODEL, TINY_MODEL, TINYLLAMA_1_1B,
                          W4A16_KV8)
from repro.errors import ConfigError, LayoutError
from repro.numerics.fp16 import fp16
from repro.quant.groupquant import quantize_groups


class TestValidation:
    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_divisible_models_pass(self, tp):
        validate_tp(LLAMA2_7B, tp)
        validate_tp(TINY_MODEL, tp)

    def test_indivisible_heads_raise(self):
        with pytest.raises(ConfigError):
            validate_tp(TINY_MODEL, 3)  # 4 heads do not split 3 ways

    def test_gqa_kv_heads_bound_tp(self):
        # TinyLlama has 4 KV heads: tp=8 would split below one KV head.
        with pytest.raises(ConfigError):
            validate_tp(TINYLLAMA_1_1B, 8)

    def test_degree_zero_rejected(self):
        with pytest.raises(ConfigError):
            validate_tp(TINY_MODEL, 0)


class TestShardShapes:
    def test_shard_config_preserves_head_dim(self):
        cfg = shard_model_config(LLAMA2_7B, 4)
        assert cfg.head_dim == LLAMA2_7B.head_dim
        assert cfg.num_heads == LLAMA2_7B.num_heads // 4
        assert cfg.kv_heads == LLAMA2_7B.kv_heads // 4
        assert cfg.kv_dim == LLAMA2_7B.kv_dim // 4
        assert cfg.max_context == LLAMA2_7B.max_context

    def test_tp1_is_the_model_itself(self):
        assert shard_model_config(TINY_MODEL, 1) is TINY_MODEL

    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_projection_shapes_tile_the_full_matrices(self, tp):
        full = projection_shapes(LLAMA2_7B, 1)
        sharded = projection_shapes(LLAMA2_7B, tp)
        for name, (out, inp) in sharded.items():
            axis = PROJECTION_AXES[name]
            f_out, f_inp = full[name]
            if axis == "column":
                assert (out * tp, inp) == (f_out, f_inp)
            else:
                assert (out, inp * tp) == (f_out, f_inp)

    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_stream_params_tile_back(self, tp):
        """tp shards together stream the full projections, and each
        repeats only the (replicated) norm weights."""
        per_shard = shard_stream_params(LLAMA2_7B, tp)
        total = per_shard * tp
        replicated_norms = (tp - 1) * LLAMA2_7B.norm_params()
        assert total == LLAMA2_7B.decode_stream_params() + replicated_norms

    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_kv_bytes_tile_back(self, tp):
        assert shard_kv_bytes_per_token(LLAMA2_7B, tp) * tp \
            == LLAMA2_7B.kv_bytes_per_token()

    @pytest.mark.parametrize("tp", [1, 2])
    def test_kv_region_tiling(self, tp):
        validate_kv_tiling(LLAMA2_7B, W4A16_KV8, tp)
        validate_kv_tiling(TINY_MODEL, W4A16_KV8, tp, context=32)


class TestQuantShardTiling:
    @pytest.fixture()
    def params(self, rng):
        return quantize_groups(rng.standard_normal((16, 128)), bits=4,
                               group_size=32)

    @pytest.mark.parametrize("axis", ["column", "row"])
    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_shard_unshard_roundtrip(self, params, tp, axis):
        shards = shard_quant_params(params, tp, axis)
        assert len(shards) == tp
        back = unshard_quant_params(shards, axis)
        assert np.array_equal(back.codes, params.codes)
        assert np.array_equal(back.scales, params.scales)
        assert np.array_equal(back.zeros, params.zeros)

    @pytest.mark.parametrize("axis", ["column", "row"])
    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_encoded_streams_tile_back(self, params, tp, axis):
        """Per-shard interleaved byte streams decode and stitch back to
        the exact unsharded image (the acceptance validation)."""
        validate_shard_tiling(params, tp, axis)

    def test_row_split_off_group_boundary_raises(self, rng):
        params = quantize_groups(rng.standard_normal((4, 96)), bits=4,
                                 group_size=32)
        # 96 columns / 2 = 48 is not a multiple of the 32-wide groups.
        with pytest.raises(LayoutError):
            shard_quant_params(params, 2, "row")

    def test_uneven_rows_raise(self, rng):
        params = quantize_groups(rng.standard_normal((6, 64)), bits=4,
                                 group_size=32)
        with pytest.raises(LayoutError):
            shard_quant_params(params, 4, "column")


class TestFunctionalSlices:
    def test_slices_are_views_of_full_fp16_mats(self, tiny_qweights):
        shards = shard_functional_weights(tiny_qweights, 2)
        assert len(shards) == 2
        full_wq = fp16(tiny_qweights.layers[0]["wq"].effective_weight())
        stacked = np.concatenate([s.mats[0]["wq"] for s in shards])
        assert np.array_equal(stacked, full_wq)
        full_wo = fp16(tiny_qweights.layers[0]["wo"].effective_weight())
        side = np.concatenate([s.mats[0]["wo"] for s in shards], axis=1)
        assert np.array_equal(side, full_wo)

    def test_lm_head_rows_partition_vocab(self, tiny_qweights):
        shards = shard_functional_weights(tiny_qweights, 4)
        rows = sum(s.lm_head.shape[0] for s in shards)
        assert rows == TINY_MODEL.vocab_size

    def test_reduction_exactness_predicate(self):
        # Power-of-two widths within two DOT tiles: exact.
        assert functional_reduction_is_exact(TINY_MODEL, 2)
        assert functional_reduction_is_exact(TINY_MODEL, 4)
        assert functional_reduction_is_exact(SMALL_MODEL, 2)
        # 7B rows span 32+ accumulation tiles: a tree cannot replay the
        # sequential FP16 accumulator chain.
        assert not functional_reduction_is_exact(LLAMA2_7B, 2)
        # tp = 1 is trivially exact everywhere.
        assert functional_reduction_is_exact(LLAMA2_7B, 1)
