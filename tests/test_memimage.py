"""DDR memory image construction (Sec. VII-A, Fig. 1)."""

import pytest

from repro.config import KV260, LLAMA2_7B, TINY_MODEL, QuantConfig, W4A16_KV8
from repro.errors import CapacityError
from repro.packing.memimage import build_memory_image
from repro.packing.weight_layout import WeightLayoutSpec, decode_weight_stream


@pytest.fixture(scope="module")
def llama_image():
    return build_memory_image(LLAMA2_7B, W4A16_KV8, context=1024)


class TestLlamaImage:
    def test_weights_match_paper(self, llama_image):
        # Paper: 3556 MB.  Our layout (padded superblocks, FP16 embedding)
        # lands within 1%.
        assert llama_image.weight_mib() == pytest.approx(3556, rel=0.01)

    def test_kv_matches_paper_exactly(self, llama_image):
        # 256 MiB payload + 8 MiB scale-zero packs = 264 MB.
        assert llama_image.kv_mib() == pytest.approx(264, rel=0.002)

    def test_capacity_utilization_93_percent(self, llama_image):
        assert llama_image.capacity_utilization() == pytest.approx(0.933,
                                                                   abs=0.005)

    def test_no_overlapping_allocations(self, llama_image):
        assert llama_image.address_map.overlaps() == []

    def test_embedding_in_high_region(self, llama_image):
        assert llama_image.allocations["embedding"].region == "high"

    def test_first_layers_high_rest_low(self, llama_image):
        assert llama_image.allocations["weights.layer0.wq"].region == "high"
        assert llama_image.allocations["weights.layer31.wq"].region == "low"

    def test_kv_follows_its_layer(self, llama_image):
        assert llama_image.allocations["kv.layer0"].region == "high"
        assert llama_image.allocations["kv.layer31"].region == "low"

    def test_everything_beat_aligned(self, llama_image):
        for alloc in llama_image.allocations.values():
            assert alloc.start % 64 == 0


class TestConstraints:
    def test_context_beyond_max_rejected(self):
        with pytest.raises(CapacityError):
            build_memory_image(LLAMA2_7B, W4A16_KV8, context=2048)

    def test_indivisible_group_rejected(self):
        with pytest.raises(CapacityError):
            build_memory_image(TINY_MODEL, W4A16_KV8)  # hidden 64 < group 128

    def test_w16_llama_does_not_fit(self):
        # FP16 LLaMA2-7B is ~13 GB: must overflow the 4 GB map.
        w16 = QuantConfig(weight_bits=16, kv_bits=16)
        with pytest.raises(CapacityError):
            build_memory_image(LLAMA2_7B, w16, context=1024)


class TestMaterialized:
    def test_tiny_image_materializes_and_roundtrips(self, tiny_qweights,
                                                    tiny_quant):
        image = build_memory_image(TINY_MODEL, tiny_quant, context=64,
                                   qweights=tiny_qweights)
        name = "weights.layer0.wq"
        data = image.data[name]
        assert len(data) == image.allocations[name].size
        spec = WeightLayoutSpec(weight_bits=tiny_quant.weight_bits,
                                zero_bits=tiny_quant.weight_zero_bits,
                                group_size=tiny_quant.weight_group_size)
        decoded = decode_weight_stream(data, TINY_MODEL.hidden_size,
                                       TINY_MODEL.hidden_size, spec)
        original = tiny_qweights.projection(0, "wq").params
        import numpy as np

        assert np.array_equal(decoded.codes, original.codes)
        assert np.array_equal(decoded.scales, original.scales)

    def test_tiny_image_fits_easily(self, tiny_qweights, tiny_quant):
        image = build_memory_image(TINY_MODEL, tiny_quant, context=64,
                                   qweights=tiny_qweights)
        assert image.capacity_utilization(KV260.dram_bytes) < 0.01
