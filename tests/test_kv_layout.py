"""KV scale-zero FIFO packing (Fig. 4B)."""

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.packing.kv_layout import (
    KVScaleZeroFifo,
    decode_pack,
    decode_pack_word,
    encode_pack,
)
from repro.quant.kv8 import KVQuantParams, kv_quantize


def _pack(scale=0.5, zero=-3):
    return KVQuantParams(scale=np.float16(scale), zero=zero)


class TestPackEncoding:
    def test_pack_is_4_bytes(self):
        assert len(encode_pack(_pack())) == 4

    def test_roundtrip(self):
        p = _pack(0.123, -77)
        q = decode_pack(encode_pack(p))
        assert q.zero == -77
        assert float(q.scale) == float(np.float16(0.123))

    def test_real_quantization_pack_roundtrips(self, rng):
        _, p = kv_quantize(rng.standard_normal(64))
        q = decode_pack(encode_pack(p))
        assert q.zero == p.zero
        assert float(q.scale) == float(p.scale)

    def test_zero_out_of_range_rejected(self):
        with pytest.raises(LayoutError):
            encode_pack(_pack(zero=1))
        with pytest.raises(LayoutError):
            encode_pack(_pack(zero=-256))

    def test_pad_byte_is_zero(self):
        assert encode_pack(_pack())[3] == 0

    def test_decode_word(self):
        word = b"".join(encode_pack(_pack(zero=-i)) for i in range(16))
        packs = decode_pack_word(word)
        assert len(packs) == 16
        assert [p.zero for p in packs] == [-i for i in range(16)]

    def test_decode_bad_length(self):
        with pytest.raises(LayoutError):
            decode_pack(b"\x00" * 3)


class TestFifo:
    def _feed(self, fifo, layers, heads, tokens):
        for _ in range(tokens):
            for layer in range(layers):
                for head in range(heads):
                    for is_value in (False, True):
                        fifo.push(layer, head, is_value, _pack())

    def test_stream_count(self):
        fifo = KVScaleZeroFifo(4, 2)
        assert fifo.n_streams == 16

    def test_no_writes_before_16_tokens(self):
        fifo = KVScaleZeroFifo(2, 2)
        self._feed(fifo, 2, 2, 16)
        assert fifo.fifo_write_count() == 0

    def test_writes_start_at_token_17(self):
        fifo = KVScaleZeroFifo(2, 2)
        self._feed(fifo, 2, 2, 17)
        # Token 17's packs evict every stream's full word.
        assert fifo.fifo_write_count() == fifo.n_streams

    def test_flushed_words_are_bus_sized(self):
        fifo = KVScaleZeroFifo(2, 2)
        self._feed(fifo, 2, 2, 17)
        for _, word in fifo.flushed_words:
            assert len(word) == 64

    def test_out_of_order_push_rejected(self):
        fifo = KVScaleZeroFifo(2, 2)
        fifo.push(0, 0, False, _pack())
        with pytest.raises(LayoutError):
            fifo.push(1, 1, True, _pack())

    def test_flush_all_pads(self):
        fifo = KVScaleZeroFifo(1, 1)
        self._feed(fifo, 1, 1, 3)
        drained = fifo.flush_all()
        assert len(drained) == 2  # K stream and V stream
        assert all(len(word) == 64 for _, word in drained)

    def test_flushed_word_content_roundtrips(self):
        fifo = KVScaleZeroFifo(1, 1)
        for token in range(17):
            fifo.push(0, 0, False, _pack(zero=-(token % 16)))
            fifo.push(0, 0, True, _pack())
        key, word = fifo.flushed_words[0]
        assert key == (False, 0, 0)
        packs = decode_pack_word(word)
        assert [p.zero for p in packs] == [-(i % 16) for i in range(16)]

    def test_write_reduction_factor(self):
        # 16 packs per word -> 16x fewer (and 16x larger) writes.
        fifo = KVScaleZeroFifo(4, 4)
        self._feed(fifo, 4, 4, 32)
        naive = KVScaleZeroFifo.naive_write_count(4, 4, 32)
        fifo.flush_all()
        assert naive / fifo.fifo_write_count() == pytest.approx(16.0)

    def test_buffer_footprint(self):
        # Paper's design point: 32 layers x 32 heads x 2 = 2048 streams,
        # one bus word each = 128 KiB of on-chip buffer.
        fifo = KVScaleZeroFifo(32, 32)
        assert fifo.buffer_bytes() == 2048 * 64

    def test_peak_occupancy_bounded(self):
        fifo = KVScaleZeroFifo(2, 2)
        self._feed(fifo, 2, 2, 40)
        assert fifo.peak_buffered_packs <= fifo.n_streams * 16

    def test_rejects_bad_geometry(self):
        with pytest.raises(LayoutError):
            KVScaleZeroFifo(0, 4)
