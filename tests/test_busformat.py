"""512-bit bus-word primitives."""

import pytest

from repro.errors import LayoutError
from repro.packing.busformat import BUS_BYTES, beats_for, pad_to_beat, split_beats


def test_bus_is_64_bytes():
    assert BUS_BYTES == 64


def test_beats_for_exact():
    assert beats_for(128) == 2


def test_beats_for_rounds_up():
    assert beats_for(65) == 2
    assert beats_for(1) == 1


def test_beats_for_zero():
    assert beats_for(0) == 0


def test_beats_for_negative_raises():
    with pytest.raises(LayoutError):
        beats_for(-1)


def test_pad_to_beat_idempotent():
    data = b"x" * 64
    assert pad_to_beat(data) == data


def test_pad_to_beat_pads_with_zeros():
    padded = pad_to_beat(b"abc")
    assert len(padded) == 64
    assert padded[:3] == b"abc"
    assert padded[3:] == b"\x00" * 61


def test_split_beats():
    data = b"a" * 64 + b"b" * 64
    beats = split_beats(data)
    assert len(beats) == 2
    assert beats[0] == b"a" * 64


def test_split_unaligned_raises():
    with pytest.raises(LayoutError):
        split_beats(b"x" * 65)
