"""Analytical bandwidth-bound model (Table II arithmetic)."""

import pytest

from repro.config import (
    JETSON_AGX_ORIN,
    JETSON_ORIN_NANO,
    KV260,
    LLAMA2_7B,
    RASPBERRY_PI_4B,
    W4A16_KV8,
)
from repro.core.analytical import (
    decode_roofline,
    effective_bandwidth_demand,
    intrinsic_utilization_ceiling,
    theoretical_tokens_per_s,
    utilization,
    weight_bytes_per_token,
)
from repro.errors import ConfigError


def test_kv260_theoretical_is_5_8():
    """Table II: 5.8 token/s ceiling for LLaMA2-7B W4 at 19.2 GB/s."""
    assert theoretical_tokens_per_s(LLAMA2_7B, KV260, 4) == pytest.approx(
        5.8, abs=0.05)


def test_pi_theoretical_is_3_9():
    assert theoretical_tokens_per_s(LLAMA2_7B, RASPBERRY_PI_4B, 4) == \
        pytest.approx(3.9, abs=0.05)


def test_agx_orin_theoretical_is_62():
    assert theoretical_tokens_per_s(LLAMA2_7B, JETSON_AGX_ORIN, 4) == \
        pytest.approx(62.1, abs=0.5)


def test_orin_nano_theoretical_is_20_7():
    assert theoretical_tokens_per_s(LLAMA2_7B, JETSON_ORIN_NANO, 4) == \
        pytest.approx(20.7, abs=0.3)


def test_weight_bytes_per_token():
    assert weight_bytes_per_token(LLAMA2_7B, 4) == pytest.approx(3.3e9,
                                                                 rel=0.01)


def test_utilization_of_reported_speed():
    """4.9 measured / 5.8 theoretical = 84.5%."""
    assert utilization(4.9, LLAMA2_7B, KV260, 4) == pytest.approx(0.845,
                                                                  abs=0.01)


def test_utilization_rejects_negative():
    with pytest.raises(ConfigError):
        utilization(-1, LLAMA2_7B, KV260)


def test_weight_bits_must_be_positive():
    with pytest.raises(ConfigError):
        weight_bytes_per_token(LLAMA2_7B, 0)


def test_effective_demand_exceeds_weights():
    demand = effective_bandwidth_demand(LLAMA2_7B, W4A16_KV8, 512)
    assert demand > weight_bytes_per_token(LLAMA2_7B, 4)


def test_intrinsic_ceiling_below_one():
    ceiling = intrinsic_utilization_ceiling(LLAMA2_7B, W4A16_KV8, 512)
    assert 0.85 < ceiling < 1.0


def test_intrinsic_ceiling_decreases_with_context():
    a = intrinsic_utilization_ceiling(LLAMA2_7B, W4A16_KV8, 64)
    b = intrinsic_utilization_ceiling(LLAMA2_7B, W4A16_KV8, 1024)
    assert b < a


def test_roofline_consistency():
    roof = decode_roofline(LLAMA2_7B, KV260, W4A16_KV8, 512,
                           ddr_efficiency=0.95)
    assert roof["achievable_tokens_per_s"] < roof["theoretical_tokens_per_s"]
    assert roof["utilization_ceiling"] == pytest.approx(
        roof["achievable_tokens_per_s"] / roof["theoretical_tokens_per_s"])
