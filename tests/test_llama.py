"""Float64 reference model."""

import numpy as np
import pytest

from repro.config import TINY_MODEL, ModelConfig
from repro.errors import SimulationError
from repro.model.kvcache import FloatKVCache
from repro.model.llama import ReferenceModel
from repro.model.weights import random_weights


@pytest.fixture(scope="module")
def model():
    return ReferenceModel(random_weights(TINY_MODEL, seed=3))


def test_logits_shape(model):
    cache = FloatKVCache(TINY_MODEL)
    logits = model.forward_token(5, cache, 0)
    assert logits.shape == (TINY_MODEL.vocab_size,)


def test_logits_finite(model):
    cache = FloatKVCache(TINY_MODEL)
    assert np.all(np.isfinite(model.forward_token(1, cache, 0)))


def test_prefill_returns_last_logits(model):
    tokens = [1, 2, 3]
    logits, cache = model.prefill(tokens)
    # Same logits as processing tokens one by one.
    cache2 = FloatKVCache(TINY_MODEL)
    for pos, tok in enumerate(tokens):
        expected = model.forward_token(tok, cache2, pos)
    assert np.allclose(logits, expected)


def test_prefill_empty_raises(model):
    with pytest.raises(SimulationError):
        model.prefill([])


def test_invalid_token_raises(model):
    cache = FloatKVCache(TINY_MODEL)
    with pytest.raises(SimulationError):
        model.forward_token(TINY_MODEL.vocab_size, cache, 0)


def test_causality(model):
    """Changing a later token must not affect earlier logits."""
    logits_a, _ = model.prefill([1, 2])
    # Different third token, same first two: re-run prefix and compare.
    logits_b, _ = model.prefill([1, 2])
    assert np.array_equal(logits_a, logits_b)


def test_context_changes_prediction(model):
    """The model must actually use its KV cache."""
    logits_a, _ = model.prefill([1, 2, 9])
    logits_b, _ = model.prefill([7, 5, 9])
    assert not np.allclose(logits_a, logits_b)


def test_generate_deterministic_greedy(model):
    a = model.generate([1, 2, 3], max_new_tokens=6)
    b = model.generate([1, 2, 3], max_new_tokens=6)
    assert a == b
    assert len(a) == 6


def test_generate_respects_context_limit(model):
    prompt = list(range(1, TINY_MODEL.max_context - 1))
    out = model.generate(prompt, max_new_tokens=10)
    assert len(out) <= TINY_MODEL.max_context - len(prompt)


def test_decode_continues_prefill(model):
    logits, cache = model.prefill([4, 5, 6])
    tok = int(np.argmax(logits))
    next_logits = model.decode_step(tok, cache, 3)
    assert np.all(np.isfinite(next_logits))
    assert cache.length >= 4


def test_gqa_model_runs():
    cfg = ModelConfig(name="gqa-test", hidden_size=64, num_layers=2,
                      num_heads=8, num_kv_heads=2, intermediate_size=96,
                      vocab_size=300, max_context=32)
    m = ReferenceModel(random_weights(cfg, seed=0))
    logits, _ = m.prefill([1, 2, 3])
    assert logits.shape == (300,)


def test_ungated_mlp_model_runs():
    cfg = ModelConfig(name="ungated", hidden_size=64, num_layers=2,
                      num_heads=4, intermediate_size=128, vocab_size=300,
                      max_context=32, gated_mlp=False)
    m = ReferenceModel(random_weights(cfg, seed=0))
    logits, _ = m.prefill([1, 2])
    assert np.all(np.isfinite(logits))
