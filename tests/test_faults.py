"""Fault injection, health-aware routing, retry, and degraded mode.

The resilience contract (PR 9): a seeded :class:`FaultSchedule` is a
pure function of its inputs, every engine tier observes the same faults
at the same simulated clocks (bit-identical reports), killed requests
are re-dispatched to healthy replicas with backoff and never silently
lost, exhausted retry budgets surface as ``FinishReason.FAILED``, and
degraded-mode admission sheds only low classes while capacity is down.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    DegradedModeConfig,
    FaultAction,
    FaultEvent,
    FaultSchedule,
    HealthTracker,
    ReplicaRouter,
    ReplicaFaultPlan,
    RetryPolicy,
)
from repro.config import TINY_MODEL
from repro.engine import FinishReason, TenantSpec, synthetic_trace
from repro.errors import SimulationError
from test_telemetry_equivalence import (
    assert_reports_identical,
    make_engine,
)

FF_TIERS = ("multi", "single", False)

FG = TenantSpec("fg", "interactive")
BULK = TenantSpec("bulk", "batch")
BG = TenantSpec("bg", "best_effort")
MIX = ((FG, 0.25), (BULK, 0.5), (BG, 0.25))


def trace(n=24, rate=3000.0, seed=0, mix=None):
    return synthetic_trace(TINY_MODEL, n_requests=n,
                           arrival_rate_rps=rate, seed=seed,
                           prompt_len=(3, 8), decode_len=(4, 16),
                           tenant_mix=mix)


def span_s(n=24, rate=3000.0):
    return n / rate


# ---------------------------------------------------------------------
# Schedules and plans
# ---------------------------------------------------------------------

class TestFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(SimulationError):
            FaultEvent("meteor", 0, 0.1, 0.1)
        with pytest.raises(SimulationError):
            FaultEvent("crash", 0, -1.0, 0.1)
        with pytest.raises(SimulationError):
            FaultEvent("crash", 0, 0.1, 0.0)
        with pytest.raises(SimulationError):
            FaultEvent("slowdown", 0, 0.1, 0.1, factor=0.5)

    def test_per_replica_overlap_rejected(self):
        events = [FaultEvent("crash", 0, 0.1, 0.5),
                  FaultEvent("hang", 0, 0.3, 0.1)]
        with pytest.raises(SimulationError, match="overlap"):
            FaultSchedule(events)
        # Same times on different replicas are fine.
        FaultSchedule([FaultEvent("crash", 0, 0.1, 0.5),
                       FaultEvent("hang", 1, 0.3, 0.1)])

    def test_crash_expands_to_outage_plus_warmup(self):
        sched = FaultSchedule.single_crash(0, 0.1, 0.2, warmup_s=0.05,
                                           warmup_factor=3.0)
        plan = sched.plan_for(0)
        assert isinstance(plan, ReplicaFaultPlan)
        assert plan.actions == (
            FaultAction("crash", 0.1, 0.2),
            FaultAction("slow", 0.30000000000000004, 0.05, 3.0))
        assert sched.plan_for(1).actions == ()

    def test_generate_is_seed_deterministic(self):
        a = FaultSchedule.generate(3, horizon_s=0.5, seed=11)
        b = FaultSchedule.generate(3, horizon_s=0.5, seed=11)
        c = FaultSchedule.generate(3, horizon_s=0.5, seed=12)
        assert a == b
        assert a != c

    def test_retry_backoff_caps(self):
        retry = RetryPolicy(base_s=0.001, multiplier=2.0, cap_s=0.003,
                            budget=5)
        assert retry.delay_s(1) == 0.001
        assert retry.delay_s(2) == 0.002
        assert retry.delay_s(3) == 0.003
        assert retry.delay_s(4) == 0.003


class TestHealthTracker:
    def test_crash_outage_and_detection_delay(self):
        sched = FaultSchedule.single_crash(1, 0.1, 0.2, warmup_s=0.05)
        tracker = HealthTracker(sched, 3, detection_delay_s=0.01)
        assert tracker.is_healthy(1, 0.1)       # not yet detected
        assert not tracker.is_healthy(1, 0.11)  # detected
        assert not tracker.is_healthy(1, 0.34)  # warm-up still unhealthy
        assert tracker.is_healthy(1, 0.36)      # recovered
        assert tracker.is_healthy(0, 0.2) and tracker.is_healthy(2, 0.2)
        assert tracker.healthy_fraction(0.2) == pytest.approx(2 / 3)
        assert tracker.degraded_spans() == ((0.1, 0.35000000000000003),)
        assert tracker.mttr_s() == pytest.approx(0.25)

    def test_slowdowns_stay_healthy(self):
        sched = FaultSchedule([FaultEvent("slowdown", 0, 0.1, 0.2,
                                          factor=2.0)])
        tracker = HealthTracker(sched, 2)
        assert tracker.is_healthy(0, 0.2)
        assert tracker.degraded_spans() == ()
        assert tracker.mttr_s() is None


class TestDegradedMode:
    def test_shed_classes_by_capacity(self):
        cfg = DegradedModeConfig()
        assert cfg.shed_classes(1.0) == frozenset()
        assert "best_effort" in cfg.shed_classes(0.66)
        assert "interactive" not in cfg.shed_classes(0.0)


# ---------------------------------------------------------------------
# Engine-level fault handling: every tier sees the same faults
# ---------------------------------------------------------------------

def run_with_plan(ff, plan, n=24, rate=3000.0, seed=0):
    eng = make_engine("cycle", "slotted", ff=ff)
    eng.fault_plan = plan
    report = eng.run(trace(n=n, rate=rate, seed=seed), telemetry="full")
    return eng, report


class TestEngineFaults:
    def test_crash_kills_are_tier_identical(self):
        sched = FaultSchedule.single_crash(
            0, 0.3 * span_s(), 0.25 * span_s(), warmup_s=0.1 * span_s())
        plan = sched.plan_for(0)
        eng_m, rep_m = run_with_plan("multi", plan)
        eng_s, rep_s = run_with_plan("single", plan)
        eng_e, rep_e = run_with_plan(False, plan)
        assert eng_m.killed, "crash must hit in-flight work"
        assert eng_m.killed == eng_s.killed == eng_e.killed
        assert eng_m.fault_stats() == eng_s.fault_stats() \
            == eng_e.fault_stats()
        assert_reports_identical(rep_m, rep_s)
        assert_reports_identical(rep_m, rep_e)
        # Killed requests do not retire: the report only holds the
        # survivors, and every kill is attributed a phase.
        killed_ids = {k.request.request_id for k in eng_m.killed}
        retired = {r.request_id for r in rep_m.results}
        assert killed_ids and not killed_ids & retired
        assert {k.phase for k in eng_m.killed} \
            <= {"running", "queued", "arrival"}

    def test_hang_and_slowdown_are_tier_identical(self):
        events = [FaultEvent("hang", 0, 0.2 * span_s(),
                             0.1 * span_s()),
                  FaultEvent("slowdown", 0, 0.5 * span_s(),
                             0.3 * span_s(), factor=3.0)]
        plan = FaultSchedule(events).plan_for(0)
        _, rep_m = run_with_plan("multi", plan)
        _, rep_s = run_with_plan("single", plan)
        _, rep_e = run_with_plan(False, plan)
        assert_reports_identical(rep_m, rep_s)
        assert_reports_identical(rep_m, rep_e)

    def test_slowdown_extends_compute_bound_run(self):
        base = make_engine("cycle", "slotted")
        healthy = base.run(trace(rate=1e9), telemetry="full")
        plan = FaultSchedule([FaultEvent(
            "slowdown", 0, 0.0, healthy.total_time_s * 10,
            factor=2.0)]).plan_for(0)
        _, slowed = run_with_plan("multi", plan, rate=1e9)
        assert slowed.total_time_s > healthy.total_time_s

    def test_fault_window_break_reason(self):
        """A fault boundary cuts fast-forward windows; the multi-step
        predictor *plans* its chains to end exactly there (the boundary
        is known in advance), so only the single-window tier records
        the cut as a "fault" break."""
        chaos_trace = synthetic_trace(
            TINY_MODEL, n_requests=4, arrival_rate_rps=1e9,
            prompt_len=(3, 8), decode_len=(64, 128), seed=0)
        plan = FaultSchedule([FaultEvent(
            "slowdown", 0, 0.0005, 0.001, factor=2.0)]).plan_for(0)
        eng = make_engine("cycle", "slotted", ff="multi")
        eng.fault_plan = plan
        rep = eng.run(chaos_trace, telemetry="full")
        assert not eng.killed
        assert len(rep.results) == 4
        assert rep.window_stats["breaks"].get("fault", 0) == 0
        eng_s = make_engine("cycle", "slotted", ff="single")
        eng_s.fault_plan = plan
        rep_s = eng_s.run(chaos_trace, telemetry="full")
        assert rep_s.window_stats["breaks"]["fault"] > 0
        assert_reports_identical(rep, rep_s)

    def test_fault_boundary_folding_shrinks_break_histogram(self):
        """Satellite metric of the event-horizon fold: on a chaotic
        trace the multi tier's total unplanned-break count is strictly
        below the single tier's, because every fault-boundary cut that
        the single tier logs is a planned chain end for the predictor."""
        chaos_trace = synthetic_trace(
            TINY_MODEL, n_requests=6, arrival_rate_rps=1e9,
            prompt_len=(3, 8), decode_len=(64, 128), seed=1)
        events = [FaultEvent("slowdown", 0, 0.0004, 0.0008,
                             factor=2.5),
                  FaultEvent("slowdown", 0, 0.0016, 0.0008,
                             factor=1.5),
                  FaultEvent("hang", 0, 0.003, 0.0005)]
        plan = FaultSchedule(events).plan_for(0)
        reps = {}
        for tier in ("multi", "single"):
            eng = make_engine("cycle", "slotted", ff=tier)
            eng.fault_plan = plan
            reps[tier] = eng.run(chaos_trace, telemetry="full")
        rep_m, rep_s = reps["multi"], reps["single"]
        assert_reports_identical(rep_m, rep_s)
        breaks_m = rep_m.window_stats["breaks"]
        breaks_s = rep_s.window_stats["breaks"]
        assert breaks_s.get("fault", 0) > 0
        assert breaks_m.get("fault", 0) == 0
        assert sum(breaks_m.values()) < sum(breaks_s.values())

    def test_fault_plan_is_inert_between_runs(self):
        """Clearing ``fault_plan`` restores healthy behavior exactly."""
        eng = make_engine("cycle", "slotted")
        baseline = eng.run(trace(), telemetry="full")
        eng.fault_plan = FaultSchedule.single_crash(
            0, 0.3 * span_s(), 0.25 * span_s()).plan_for(0)
        eng.run(trace(), telemetry="full")
        eng.fault_plan = None
        again = eng.run(trace(), telemetry="full")
        assert not eng.killed
        assert_reports_identical(baseline, again)


# ---------------------------------------------------------------------
# Router-level resilience: retry, health routing, degraded admission
# ---------------------------------------------------------------------

def cluster(ff="multi", n=3, faults=None, retry=None, degraded=None,
            policy="round_robin"):
    engines = [make_engine("cycle", "slotted", ff=ff) for _ in range(n)]
    return ReplicaRouter(engines, policy=policy, faults=faults,
                         retry=retry, degraded=degraded)


def crash_schedule(n=48, rate=3000.0):
    s = n / rate
    return FaultSchedule.single_crash(1, 0.3 * s, 0.25 * s,
                                      warmup_s=0.1 * s)


#: All 48 requests arrive at ~t=0 and the crash lands mid-run, so the
#: down replica has queued + running work to kill — health-aware
#: routing cannot steer arrivals away from a backlog that already
#: exists.
SATURATED_CRASH = FaultSchedule.single_crash(1, 0.0005, 0.001,
                                             warmup_s=0.0005)


def saturated_trace(seed=0):
    return trace(n=48, rate=1e9, seed=seed)


class TestRouterResilience:
    def test_crash_redispatch_no_lost_requests(self):
        router = cluster(faults=SATURATED_CRASH)
        report = router.run(saturated_trace(), telemetry="full")
        res = report.resilience
        assert res["n_killed"] > 0
        assert res["n_redispatched"] == res["n_killed"]
        assert res["n_failed"] == 0 and res["n_lost"] == 0
        assert res["lost_request_ids"] == ()
        assert report.n_requests == 48
        reasons = {r.finish_reason for r in report.results}
        assert FinishReason.FAILED not in reasons

    def test_resilience_is_tier_identical(self):
        reports = [cluster(ff=ff, faults=SATURATED_CRASH)
                   .run(saturated_trace(), telemetry="full")
                   for ff in FF_TIERS]
        for other in reports[1:]:
            assert reports[0].resilience == other.resilience
            assert_reports_identical(reports[0], other)

    def test_same_seed_replay_is_bit_identical(self):
        faults = FaultSchedule.generate(3, horizon_s=span_s(48),
                                        seed=9, mean_gap_s=span_s(48) / 3)
        runs = [cluster(faults=faults).run(trace(n=48), telemetry="full")
                for _ in range(2)]
        assert runs[0].resilience == runs[1].resilience
        assert_reports_identical(runs[0], runs[1])

    def test_budget_exhaustion_surfaces_failed(self):
        """A cluster with no survivors fails loudly, never silently."""
        n, rate = 16, 3000.0
        s = n / rate
        faults = FaultSchedule([FaultEvent("crash", 0, 0.1 * s, 4 * s)])
        router = cluster(n=1, faults=faults,
                         retry=RetryPolicy(budget=1))
        report = router.run(trace(n=n, rate=rate), telemetry="full")
        res = report.resilience
        assert res["n_failed"] > 0 and res["n_lost"] == 0
        failed = [r for r in report.results
                  if r.finish_reason is FinishReason.FAILED]
        assert len(failed) == res["n_failed"]
        for r in failed:
            assert not r.tokens and r.ttft_s is None and r.e2e_s > 0
        assert report.n_requests == n

    def test_degraded_mode_sheds_only_low_classes(self):
        router = cluster(faults=crash_schedule(),
                         degraded=DegradedModeConfig())
        report = router.run(trace(n=48, mix=MIX), telemetry="full")
        res = report.resilience
        assert res["n_shed"] > 0 and res["n_lost"] == 0
        stats = report.tenant_stats
        assert stats["interactive"]["n_rejected"] == 0
        shed = sum(s["n_rejected"] for s in stats.values())
        assert shed == res["n_shed"]
        assert report.n_requests == 48

    def test_routing_avoids_down_replica(self):
        """During the outage, new arrivals land on healthy replicas."""
        faults = crash_schedule()
        router = cluster(faults=faults)
        router.run(trace(n=48), telemetry="full")
        start, end = faults.events[0].start_s, faults.events[0].end_s
        tr = trace(n=48)
        detect = router._health.detection_delay_s
        routed_down = [r.request_id for r in tr
                       if start + detect < r.arrival_s < end
                       and router.assignments[r.request_id] == 1]
        assert not routed_down

    def test_streamed_chaos_matches_full_counts(self):
        full = cluster(faults=crash_schedule(),
                       degraded=DegradedModeConfig()) \
            .run(trace(n=48, mix=MIX), telemetry="full")
        streamed = cluster(faults=crash_schedule(),
                           degraded=DegradedModeConfig()) \
            .run(lambda: iter(trace(n=48, mix=MIX)),
                 telemetry="summary")
        assert streamed.resilience == full.resilience
        assert streamed.n_requests == full.n_requests
        assert streamed.total_new_tokens == full.total_new_tokens
        assert streamed.total_time_s == full.total_time_s
        for name, s in full.tenant_stats.items():
            assert streamed.tenant_stats[name]["n_requests"] \
                == s["n_requests"]
            assert streamed.tenant_stats[name]["n_rejected"] \
                == s["n_rejected"]
            assert streamed.tenant_stats[name]["n_failed"] \
                == s["n_failed"]


# ---------------------------------------------------------------------
# Quota accounting under fault churn (hypothesis)
# ---------------------------------------------------------------------

QFG = TenantSpec("qfg", "interactive")
QBULK = TenantSpec("qbulk", "batch", kv_quota_tokens=96)
QBG = TenantSpec("qbg", "best_effort", kv_quota_tokens=64)
QMIX = ((QFG, 0.25), (QBULK, 0.5), (QBG, 0.25))


class TestQuotaLedgerUnderFaults:
    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 10_000),
           fault_seed=st.integers(0, 100),
           n_requests=st.integers(12, 40))
    def test_no_double_count_across_kill_retry_churn(self, seed,
                                                     fault_seed,
                                                     n_requests):
        """Evict -> crash-kill -> retry -> re-admit churn must leave
        every replica's per-tenant cached-token ledger drained: a
        re-dispatched request is charged on exactly one replica at a
        time, never twice."""
        rate = 3000.0
        horizon = n_requests / rate
        faults = FaultSchedule.generate(
            3, horizon_s=horizon, seed=fault_seed,
            mean_gap_s=horizon / 2,
            downtime_s=(0.1 * horizon, 0.3 * horizon),
            hang_s=(0.05 * horizon, 0.1 * horizon),
            slow_s=(0.1 * horizon, 0.2 * horizon),
            warmup_s=0.05 * horizon)
        router = cluster(faults=faults, degraded=DegradedModeConfig())
        report = router.run(
            trace(n=n_requests, rate=rate, seed=seed, mix=QMIX),
            telemetry="full")
        for engine in router.engines:
            assert all(v == 0 for v in engine._tenant_cached.values()), \
                engine._tenant_cached
        res = report.resilience
        assert res["n_lost"] == 0
        assert report.n_requests == n_requests
        # Conservation: every request retires exactly once across the
        # cluster (or is shed/failed), with no duplicate ids.
        ids = [r.request_id for r in report.results]
        assert len(ids) == len(set(ids)) == n_requests
