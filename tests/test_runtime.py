"""Bare-metal capacity model, inference session, and tracing."""

import pytest

from repro.config import (
    KV260,
    LLAMA2_7B,
    TINYLLAMA_1_1B,
    TINY_MODEL,
    W4A16_KV8,
    QuantConfig,
)
from repro.core.pipeline import AttentionPipeline
from repro.errors import CapacityError, SimulationError
from repro.model.sampler import Sampler
from repro.runtime.baremetal import (
    BareMetalSystem,
    LINUX_RESERVED_BYTES,
)
from repro.runtime.session import InferenceSession
from repro.runtime.trace import Trace


class TestBareMetal:
    def test_llama7b_fits_bare_metal(self):
        system = BareMetalSystem(KV260)
        assert system.fits(LLAMA2_7B, W4A16_KV8, context=1024)

    def test_llama7b_does_not_fit_under_linux(self):
        """The paper's motivating claim: no room left for an OS."""
        system = BareMetalSystem(KV260)
        assert not system.linux_would_fit(LLAMA2_7B, W4A16_KV8, context=1024)

    def test_capacity_report_matches_paper(self):
        report = BareMetalSystem(KV260).capacity_report(
            LLAMA2_7B, W4A16_KV8, 1024)
        assert report.model_utilization == pytest.approx(0.93, abs=0.01)
        assert report.kv_bytes == 264 * 1024 * 1024

    def test_max_context_exceeds_1024(self):
        """The 93.3% point leaves just enough headroom for 1024 tokens."""
        system = BareMetalSystem(KV260)
        max_ctx = system.max_context(LLAMA2_7B, W4A16_KV8)
        assert max_ctx >= 1024
        assert max_ctx < 2200  # ~540 MiB of headroom / 264 KiB per token

    def test_w8_llama7b_does_not_fit(self):
        system = BareMetalSystem(KV260)
        w8 = QuantConfig(weight_bits=8)
        assert not system.fits(LLAMA2_7B, w8, context=1024)
        with pytest.raises(CapacityError):
            system.max_context(LLAMA2_7B, w8)

    def test_tinyllama_fits_even_under_linux(self):
        system = BareMetalSystem(KV260, LINUX_RESERVED_BYTES)
        assert system.fits(TINYLLAMA_1_1B, W4A16_KV8, context=1024)

    def test_headroom_positive_when_fits(self):
        report = BareMetalSystem(KV260).capacity_report(
            LLAMA2_7B, W4A16_KV8, 1024)
        assert report.fits
        assert report.headroom_bytes > 0


class TestInferenceSession:
    def test_generate_roundtrip(self, tiny_qweights):
        session = InferenceSession(tiny_qweights, check_capacity=False)
        result = session.generate("Hi", max_new_tokens=4)
        assert result.prompt == "Hi"
        assert len(result.tokens) <= 4
        assert result.perf.tokens_per_s > 0

    def test_sampled_generation(self, tiny_qweights):
        session = InferenceSession(tiny_qweights, check_capacity=False,
                                   sampler=Sampler(temperature=0.8, seed=3))
        result = session.generate("abc", max_new_tokens=6)
        assert isinstance(result.completion, str)

    def test_overlong_prompt_rejected(self, tiny_qweights):
        session = InferenceSession(tiny_qweights, check_capacity=False)
        with pytest.raises(SimulationError):
            session.generate("x" * TINY_MODEL.max_context, 1)

    def test_capacity_check_passes_for_tiny_model(self, tiny_qweights):
        # A 117k-parameter model trivially fits the KV260.
        InferenceSession(tiny_qweights, check_capacity=True)

    def test_zero_budget_still_reports_prefill(self, tiny_qweights):
        session = InferenceSession(tiny_qweights, check_capacity=False)
        tokens, perf = session.generate_tokens([256, 1, 2], 0)
        assert tokens == []
        assert perf.ttft_s > 0  # the prompt was still prefilled

    def test_immediate_eos_has_no_decode_steps(self, tiny_qweights):
        """Intended post-EOS-fix semantics: an empty reply has TTFT but no
        decode-phase timing (the EOS token is never forwarded)."""

        class EosSampler:
            def __init__(self, eos_id):
                self.eos_id = eos_id

            def sample(self, logits):
                return self.eos_id

        session = InferenceSession(tiny_qweights, check_capacity=False)
        session.sampler = EosSampler(session.tokenizer.eos_id)
        result = session.generate("hi", max_new_tokens=4)
        assert result.tokens == []
        assert result.completion == ""
        assert result.perf.ttft_s > 0
        assert result.perf.decode_cycles == []
        with pytest.raises(SimulationError):
            _ = result.perf.tokens_per_s


class TestTrace:
    def test_from_attention_report(self):
        pipe = AttentionPipeline(LLAMA2_7B, W4A16_KV8)
        report = pipe.fused_schedule(64)
        trace = Trace.from_attention_report(report)
        assert len(trace.events) == len(report.stages) + len(report.misc)
        assert trace.span >= max(s.end for s in report.stages)

    def test_lanes(self):
        pipe = AttentionPipeline(LLAMA2_7B, W4A16_KV8)
        trace = Trace.from_attention_report(pipe.fused_schedule(16))
        assert set(trace.lanes()) == {"dense", "misc"}

    def test_render_ascii(self):
        trace = Trace()
        trace.add("alpha", 0, 10)
        trace.add("beta", 10, 5, lane="misc")
        art = trace.render(width=40)
        assert "alpha" in art and "beta" in art
        assert "#" in art and "~" in art

    def test_render_empty(self):
        assert Trace().render() == "(empty trace)"

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            Trace().add("bad", 0, -1)

    def test_render_truncates(self):
        trace = Trace()
        for i in range(50):
            trace.add(f"e{i}", i, 1)
        art = trace.render(max_events=10)
        assert "more events" in art


class TestTokenScheduleTrace:
    def test_from_token_schedule(self):
        from repro.core.scheduler import build_token_schedule

        schedule = build_token_schedule(LLAMA2_7B, W4A16_KV8, context=64)
        trace = Trace.from_token_schedule(schedule)
        dense = [e for e in trace.events if e.lane == "dense"]
        assert len(dense) == len(schedule.segments)
        assert trace.span == pytest.approx(schedule.total_cycles)

    def test_exposed_misc_marked(self):
        from repro.core.scheduler import build_token_schedule

        schedule = build_token_schedule(LLAMA2_7B, W4A16_KV8, context=64,
                                        mode="coarse")
        trace = Trace.from_token_schedule(schedule)
        misc = [e for e in trace.events if e.lane == "misc"]
        assert misc  # coarse mode exposes misc work
