"""Fused head-wise attention pipeline (Fig. 3)."""

import pytest

from repro.config import LLAMA2_7B, TINYLLAMA_1_1B, W4A16_KV8
from repro.core.pipeline import AttentionPipeline
from repro.errors import ScheduleError


@pytest.fixture(scope="module")
def pipe():
    return AttentionPipeline(LLAMA2_7B, W4A16_KV8)


class TestFusedSchedule:
    def test_all_misc_hidden_at_paper_contexts(self, pipe):
        """The headline Fig. 3 claim: no cycle penalties."""
        for ctx in (16, 128, 512, 1023):
            report = pipe.fused_schedule(ctx)
            assert report.all_hidden(), (
                f"misc ops exposed at context {ctx}: "
                f"{[m.name for m in report.misc if not m.hidden]}"
            )
            assert report.exposed_misc_cycles == 0.0

    def test_stage_count_mha(self, pipe):
        report = pipe.fused_schedule(64)
        # 32 heads x 5 stages + o_proj.
        assert len(report.stages) == 32 * 5 + 1

    def test_stages_are_contiguous(self, pipe):
        report = pipe.fused_schedule(64)
        for prev, cur in zip(report.stages, report.stages[1:]):
            assert cur.start == pytest.approx(prev.end)

    def test_softmax_window_is_v_projection(self, pipe):
        report = pipe.fused_schedule(512)
        softmaxes = [m for m in report.misc if m.name == "softmax"]
        assert len(softmaxes) == 32
        for m in softmaxes:
            assert m.hidden
            assert m.window > 0

    def test_weight_transfer_dominates_stages(self, pipe):
        report = pipe.fused_schedule(128)
        projections = [s for s in report.stages if "proj" in s.name]
        # Decode is bandwidth-bound: every projection stage is
        # transfer-limited, not compute-limited.
        assert all(s.transfer_cycles >= s.compute_cycles
                   for s in projections)

    def test_cycles_grow_with_context(self, pipe):
        a = pipe.fused_schedule(64).total_cycles
        b = pipe.fused_schedule(512).total_cycles
        assert b > a

    def test_zero_context_works(self, pipe):
        report = pipe.fused_schedule(0)
        assert report.total_cycles > 0

    def test_negative_context_rejected(self, pipe):
        with pytest.raises(ScheduleError):
            pipe.fused_schedule(-1)


class TestCoarseSchedule:
    def test_misc_fully_exposed(self, pipe):
        report = pipe.coarse_schedule(512)
        assert report.exposed_misc_cycles == report.serialized_misc_cycles
        assert report.exposed_misc_cycles > 0

    def test_coarse_slower_than_fused(self, pipe):
        for ctx in (64, 512, 1023):
            fused = pipe.fused_schedule(ctx).total_cycles
            coarse = pipe.coarse_schedule(ctx).total_cycles
            assert coarse > fused

    def test_penalty_grows_with_context(self, pipe):
        """Softmax exposure scales with context in the coarse pipeline."""
        def penalty(ctx):
            return (pipe.coarse_schedule(ctx).total_cycles
                    / pipe.fused_schedule(ctx).total_cycles)
        assert penalty(1023) > penalty(64)

    def test_mode_dispatch(self, pipe):
        assert pipe.schedule(10, "fused").mode == "fused"
        assert pipe.schedule(10, "coarse").mode == "coarse"
        with pytest.raises(ScheduleError):
            pipe.schedule(10, "sideways")


class TestGqaSchedule:
    def test_gqa_has_fewer_kv_stages(self):
        pipe = AttentionPipeline(TINYLLAMA_1_1B, W4A16_KV8)
        report = pipe.fused_schedule(128)
        k_projs = [s for s in report.stages if s.name == "k_proj"]
        assert len(k_projs) == TINYLLAMA_1_1B.kv_heads

    def test_gqa_three_pass_softmax_exposes(self):
        # With GQA there is no per-head V-projection slice to hide behind,
        # so the three-pass softmax (3 x context) overruns its 2 x context
        # dense window — the reason the online variant matters.
        pipe = AttentionPipeline(TINYLLAMA_1_1B, W4A16_KV8)
        report = pipe.fused_schedule(512)
        exposed = [m.name for m in report.misc if not m.hidden]
        assert exposed and set(exposed) == {"softmax"}

    def test_gqa_online_softmax_hides_everything(self):
        pipe = AttentionPipeline(TINYLLAMA_1_1B, W4A16_KV8,
                                 online_softmax=True)
        assert pipe.fused_schedule(512).all_hidden()
