"""Cross-backend differential harness.

One parametrized suite that replays the same trace through the
functional, cycle-model, and analytical backends, under both the
slotted and the paged KV discipline, and checks that the engine's
observable behaviour is invariant to the backend/KV combination:

* token streams — the functional/slotted run is the reference; its
  recorded streams become the token oracle of the timing-only
  backends, so all six combinations must retire every request with
  exactly the same tokens;
* timing — the functional and cycle-model backends share one cost
  model, so their clocks must agree to float precision; batch=1 engine
  steps must equal the single-sequence cycle model exactly; and the
  analytical roofline must track the cycle model within tolerance in
  the bandwidth-bound regime it models (LLaMA2-7B);
* paging — the paged runs must never be slower than slotted on a
  shared-prefix trace, and the functional paged run proves the shared
  blocks hold bit-identical K/V (else its argmax streams would drift).
"""

import numpy as np
import pytest

from repro.cluster import (
    TEN_GIG_ETHERNET,
    ShardedAnalyticalBackend,
    ShardedCycleBackend,
    ShardedFunctionalBackend,
)
from repro.config import LLAMA2_7B, TINY_MODEL, W4A16_KV8, QuantConfig
from repro.core.cyclemodel import CycleModel
from repro.engine import (
    AnalyticalBackend,
    ContinuousBatchScheduler,
    CycleModelBackend,
    FunctionalBackend,
    Request,
    synthetic_trace,
)

BACKENDS = ("functional", "cycle", "analytical")
KV_MODES = ("slotted", "paged")

BLOCK_SIZE = 8
BUDGET_TOKENS = 256  # loose enough that no combination preempts
MAX_BATCH = 4


@pytest.fixture(scope="module")
def quant32():
    return QuantConfig(weight_group_size=32)


def shared_prefix_trace():
    """Six argmax requests, four sharing a 16-token system prompt."""
    system = tuple(range(1, 17))
    prompts = [system + (30 + i, 40 + i) for i in range(4)]
    prompts += [(7, 8, 9), (250, 251, 252, 253)]
    return [Request(i, p, max_new_tokens=6)
            for i, p in enumerate(prompts)]


def make_backend(name, kv_mode, qweights, quant, oracle=None,
                 model=TINY_MODEL, n_slots=MAX_BATCH):
    kv = dict(kv_mode=kv_mode, block_size=BLOCK_SIZE,
              n_kv_blocks=BUDGET_TOKENS // BLOCK_SIZE)
    if name == "functional":
        return FunctionalBackend(qweights, n_slots=n_slots, **kv)
    cls = CycleModelBackend if name == "cycle" else AnalyticalBackend
    return cls(model, quant, n_slots=n_slots, token_oracle=oracle, **kv)


def run_engine(backend, requests, max_batch=MAX_BATCH):
    budget = BUDGET_TOKENS if backend.paged_kv is None else None
    engine = ContinuousBatchScheduler(backend, max_batch=max_batch,
                                      kv_token_budget=budget)
    return engine.run(requests)


def streams_of(report):
    return {r.request_id: tuple(r.tokens) for r in report.results}


@pytest.fixture(scope="module")
def reference(tiny_qweights, quant32):
    """Functional/slotted run: the source of truth for tokens + timing."""
    backend = make_backend("functional", "slotted", tiny_qweights, quant32)
    report = run_engine(backend, shared_prefix_trace())
    return report


@pytest.fixture(scope="module")
def oracle(reference):
    streams = streams_of(reference)

    def _oracle(request_id, step):
        return streams[request_id][step]

    return _oracle


class TestTokenStreamEquivalence:
    @pytest.mark.parametrize("kv_mode", KV_MODES)
    @pytest.mark.parametrize("name", BACKENDS)
    def test_identical_streams(self, name, kv_mode, tiny_qweights,
                               quant32, reference, oracle):
        backend = make_backend(name, kv_mode, tiny_qweights, quant32,
                               oracle=oracle)
        report = run_engine(backend, shared_prefix_trace())
        assert streams_of(report) == streams_of(reference)
        assert {r.request_id: r.finish_reason for r in report.results} \
            == {r.request_id: r.finish_reason
                for r in reference.results}

    @pytest.mark.parametrize("kv_mode", KV_MODES)
    def test_functional_and_cycle_clocks_agree(self, kv_mode,
                                               tiny_qweights, quant32,
                                               reference, oracle):
        """Same cost model + same token streams => identical clocks."""
        fn = make_backend("functional", kv_mode, tiny_qweights, quant32)
        cy = make_backend("cycle", kv_mode, tiny_qweights, quant32,
                          oracle=oracle)
        fn_report = run_engine(fn, shared_prefix_trace())
        cy_report = run_engine(cy, shared_prefix_trace())
        assert fn_report.total_time_s \
            == pytest.approx(cy_report.total_time_s, rel=1e-12)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_paged_never_slower_on_shared_prefixes(self, name,
                                                   tiny_qweights, quant32,
                                                   oracle):
        runs = {}
        for kv_mode in KV_MODES:
            backend = make_backend(name, kv_mode, tiny_qweights, quant32,
                                   oracle=oracle)
            runs[kv_mode] = run_engine(backend, shared_prefix_trace())
        assert runs["paged"].total_time_s < runs["slotted"].total_time_s

    def test_paged_functional_reuses_blocks(self, tiny_qweights, quant32):
        backend = make_backend("functional", "paged", tiny_qweights,
                               quant32)
        run_engine(backend, shared_prefix_trace())
        # Three of the four system-prompt sharers skip 2 blocks each.
        assert backend.paged_kv.prefix_reused_tokens \
            == 3 * 2 * BLOCK_SIZE
        backend.paged_kv.audit()


class TestBatchOneMatchesSingleSequenceModel:
    @pytest.mark.parametrize("kv_mode", KV_MODES)
    def test_cycle_backend_batch1_steps(self, quant32, kv_mode):
        prompt = (5, 6, 7, 8)
        backend = make_backend("cycle", kv_mode, None, quant32,
                               n_slots=1)
        report = run_engine(backend, [Request(0, prompt, 5)],
                            max_batch=1)
        cm = CycleModel(TINY_MODEL, quant32)
        freq = backend.freq_hz
        (result,) = report.results
        # Step i forwards with context prompt + i cached tokens.
        for i, step_s in enumerate(result.decode_step_s):
            want = cm.decode_step(len(prompt) + i).cycles
            assert step_s * freq == pytest.approx(want, rel=1e-12)

    def test_prefill_matches_single_sequence_model(self, quant32):
        prompt = (5, 6, 7, 8)
        backend = make_backend("cycle", "slotted", None, quant32,
                               n_slots=1)
        engine = ContinuousBatchScheduler(backend, max_batch=1,
                                          kv_token_budget=BUDGET_TOKENS)
        engine.run([Request(0, prompt, 3)])
        cm = CycleModel(TINY_MODEL, quant32)
        assert engine.finished[0].prefill_cycles \
            == pytest.approx(cm.prefill_cycles(len(prompt)), rel=1e-12)


class TestAnalyticalTracksCycleModel:
    @pytest.mark.parametrize("kv_mode", KV_MODES)
    def test_bandwidth_bound_regime(self, kv_mode):
        """On LLaMA2-7B the roofline and the cycle model must agree
        closely: decode is DRAM-bound and both charge the same bytes."""
        trace = synthetic_trace(LLAMA2_7B, 6, arrival_rate_rps=1e9,
                                seed=3, shared_prefix_len=16)
        times = {}
        for name in ("cycle", "analytical"):
            backend = make_backend(name, kv_mode, None, W4A16_KV8,
                                   model=LLAMA2_7B)
            times[name] = run_engine(backend, trace).total_time_s
        ratio = times["analytical"] / times["cycle"]
        assert ratio == pytest.approx(1.0, rel=0.05)

    def test_roofline_is_a_lower_bound_on_tiny(self, quant32, oracle):
        """The tiny model is overhead-dominated; the roofline may be
        optimistic but must never charge more than the cycle model."""
        times = {}
        for name in ("cycle", "analytical"):
            backend = make_backend(name, "slotted", None, quant32,
                                   oracle=oracle)
            times[name] = run_engine(
                backend, shared_prefix_trace()).total_time_s
        assert times["analytical"] <= times["cycle"]


def reports_identical(a, b):
    """Every observable of two serving reports is bit-identical."""
    assert a.total_time_s == b.total_time_s
    assert a.n_steps == b.n_steps
    assert a.step_batches == b.step_batches
    assert a.preemptions == b.preemptions
    assert len(a.results) == len(b.results)
    for ra, rb in zip(a.results, b.results):
        assert ra.request_id == rb.request_id
        assert ra.tokens == rb.tokens
        assert ra.decode_step_s == rb.decode_step_s
        assert ra.ttft_s == rb.ttft_s
        assert ra.e2e_s == rb.e2e_s
        assert ra.finish_reason == rb.finish_reason


class TestFastForwardEquivalence:
    """The fast-forward path and the memoized step costs are pure
    accelerations: every per-step observable — sampled tokens, per-step
    cycles and latencies, step counts, clocks — must be bit-identical
    to the step-by-step loop over the original schedule builders
    (``reference_costs=True``), under both KV disciplines and with
    arrival-gated traffic forcing windows to break mid-run.
    """

    @pytest.mark.parametrize("kv_mode", KV_MODES)
    @pytest.mark.parametrize("name", ["cycle", "analytical"])
    @pytest.mark.parametrize("arrival_rate", [1e9, 300.0])
    def test_fast_forward_is_bit_identical(self, name, kv_mode,
                                           arrival_rate, quant32):
        trace = synthetic_trace(TINY_MODEL, 20,
                                arrival_rate_rps=arrival_rate, seed=9,
                                prompt_len=(3, 10), decode_len=(4, 30),
                                shared_prefix_len=8)
        cls = CycleModelBackend if name == "cycle" else AnalyticalBackend
        kv = dict(kv_mode=kv_mode, block_size=BLOCK_SIZE,
                  n_kv_blocks=BUDGET_TOKENS // BLOCK_SIZE)
        budget = BUDGET_TOKENS if kv_mode == "slotted" else None

        def run(fast_forward, reference_costs):
            backend = cls(TINY_MODEL, quant32, n_slots=MAX_BATCH,
                          reference_costs=reference_costs, **kv)
            engine = ContinuousBatchScheduler(
                backend, max_batch=MAX_BATCH, kv_token_budget=budget,
                fast_forward=fast_forward)
            return engine.run(trace)

        reference = run(False, True)
        reports_identical(run(False, False), reference)
        reports_identical(run(True, False), reference)

    @pytest.mark.parametrize("cls", [ShardedCycleBackend,
                                     ShardedAnalyticalBackend])
    def test_sharded_fast_forward_is_bit_identical(self, cls, quant32):
        trace = synthetic_trace(TINY_MODEL, 12, arrival_rate_rps=500.0,
                                seed=4, prompt_len=(3, 10),
                                decode_len=(4, 24))

        def run(fast_forward):
            backend = cls(TINY_MODEL, quant32, tp=2, n_slots=MAX_BATCH)
            engine = ContinuousBatchScheduler(
                backend, max_batch=MAX_BATCH,
                kv_token_budget=BUDGET_TOKENS, fast_forward=fast_forward)
            return engine.run(trace)

        reports_identical(run(True), run(False))

    def test_fast_forward_handles_finite_oracle_stream(self, quant32):
        """A recorded oracle ends at its EOS; the fast-forward window
        probe must not index past it even when max_new_tokens is larger
        (regression: planned_tokens used to prefetch the whole window)."""
        stream = (21, 22, 7)  # EOS 7 sampled at step 2

        def oracle(request_id, step):
            return stream[step]

        def run(fast_forward):
            backend = CycleModelBackend(TINY_MODEL, quant32, n_slots=1,
                                        token_oracle=oracle)
            engine = ContinuousBatchScheduler(
                backend, max_batch=1, kv_token_budget=BUDGET_TOKENS,
                fast_forward=fast_forward)
            return engine.run([Request(0, (5, 6), max_new_tokens=30,
                                       eos_id=7)])

        fast, slow = run(True), run(False)
        reports_identical(fast, slow)
        assert streams_of(fast) == {0: stream}

    def test_fast_forward_respects_eos_retirement(self, quant32,
                                                  reference, oracle):
        """An oracle stream ending in EOS must retire at the same step
        with and without fast-forward (windows cannot skip the EOS)."""
        def run(fast_forward):
            backend = make_backend("cycle", "slotted", None, quant32,
                                   oracle=oracle)
            engine = ContinuousBatchScheduler(
                backend, max_batch=MAX_BATCH,
                kv_token_budget=BUDGET_TOKENS, fast_forward=fast_forward)
            return engine.run(shared_prefix_trace())

        reports_identical(run(True), run(False))
        assert streams_of(run(True)) == streams_of(reference)


class TestBatchedDecodeEquivalence:
    """The functional backend's stacked ``forward_batch`` decode must
    emit the token stream of the scalar per-token reference path."""

    def test_forward_batch_stream_matches_scalar_reference(
            self, tiny_qweights, reference):
        from repro.model.kvcache import QuantizedKVCache

        model = FunctionalBackend(tiny_qweights,
                                  n_slots=MAX_BATCH).functional
        want = streams_of(reference)
        for request in shared_prefix_trace():
            cache = QuantizedKVCache(model.config,
                                     model.qweights.quant.kv_bits)
            logits = None
            for pos, tok in enumerate(request.prompt):
                logits = model.forward_token_reference(tok, cache, pos)
            got = []
            position = len(request.prompt)
            for _ in range(request.max_new_tokens):
                token = int(np.argmax(logits))
                got.append(token)
                if token == request.eos_id:
                    break
                if len(got) == request.max_new_tokens:
                    break
                logits = model.forward_token_reference(token, cache,
                                                       position)
                position += 1
            assert tuple(got) == want[request.request_id]


class TestShardedEquivalence:
    """Cluster equivalence: a TP group is still the same engine.

    The functional TP=2 (and TP=4) group must retire every request with
    exactly the token stream of the single-device reference — the FP16
    tree reduction reproducing the DOT engine's rounding — and the
    sharded analytical roofline must stay within tolerance of the
    sharded cycle model in the bandwidth-bound regime.
    """

    @pytest.mark.parametrize("kv_mode", KV_MODES)
    @pytest.mark.parametrize("tp", [2, 4])
    def test_functional_tp_streams_match_tp1(self, tp, kv_mode,
                                             tiny_qweights, reference):
        backend = ShardedFunctionalBackend(
            tiny_qweights, tp=tp, kv_mode=kv_mode, block_size=BLOCK_SIZE,
            n_kv_blocks=BUDGET_TOKENS // BLOCK_SIZE)
        report = run_engine(backend, shared_prefix_trace())
        assert streams_of(report) == streams_of(reference)
        assert {r.request_id: r.finish_reason for r in report.results} \
            == {r.request_id: r.finish_reason
                for r in reference.results}

    def test_sharded_functional_and_cycle_clocks_agree(self, tiny_qweights,
                                                       quant32, oracle):
        """Same per-shard cost model + same comm model + same tokens
        => identical cluster clocks."""
        fn = ShardedFunctionalBackend(
            tiny_qweights, tp=2, kv_mode="slotted", block_size=BLOCK_SIZE,
            n_kv_blocks=BUDGET_TOKENS // BLOCK_SIZE)
        cy = ShardedCycleBackend(
            TINY_MODEL, quant32, tp=2, kv_mode="slotted",
            block_size=BLOCK_SIZE,
            n_kv_blocks=BUDGET_TOKENS // BLOCK_SIZE, n_slots=MAX_BATCH,
            token_oracle=oracle)
        fn_report = run_engine(fn, shared_prefix_trace())
        cy_report = run_engine(cy, shared_prefix_trace())
        assert fn_report.total_time_s \
            == pytest.approx(cy_report.total_time_s, rel=1e-12)

    def test_analytical_tp_tracks_sharded_cycle_model(self):
        """On LLaMA2-7B the sharded roofline and the sharded cycle
        model must agree closely: both charge 1/tp of the DRAM bytes
        plus the identical collective time."""
        trace = synthetic_trace(LLAMA2_7B, 6, arrival_rate_rps=1e9,
                                seed=3, shared_prefix_len=16)
        times = {}
        for cls in (ShardedCycleBackend, ShardedAnalyticalBackend):
            backend = cls(LLAMA2_7B, W4A16_KV8, tp=2,
                          interconnect=TEN_GIG_ETHERNET,
                          n_slots=MAX_BATCH)
            times[cls] = run_engine(backend, trace).total_time_s
        ratio = times[ShardedAnalyticalBackend] / times[ShardedCycleBackend]
        assert ratio == pytest.approx(1.0, rel=0.05)
