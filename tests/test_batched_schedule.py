"""Batch-aware token schedule and cycle model."""

import pytest

from repro.config import LLAMA2_7B, TINYLLAMA_1_1B, W4A16_KV8
from repro.core.cyclemodel import CycleModel
from repro.core.scheduler import TokenScheduler
from repro.errors import ScheduleError


@pytest.fixture(scope="module")
def cm():
    return CycleModel(LLAMA2_7B, W4A16_KV8)


class TestBuildBatched:
    @pytest.mark.parametrize("mode", ["fused", "coarse"])
    @pytest.mark.parametrize("context", [0, 1, 64, 512])
    def test_batch_of_one_equals_single(self, mode, context):
        sched = TokenScheduler(LLAMA2_7B, W4A16_KV8)
        single = sched.build(context, mode)
        batched = sched.build_batched([context], mode)
        assert batched.total_cycles == pytest.approx(single.total_cycles)
        assert batched.total_transfer_bytes == pytest.approx(
            single.total_transfer_bytes)
        assert batched.exposed_misc_cycles == pytest.approx(
            single.exposed_misc_cycles)

    def test_gqa_batch_of_one_equals_single(self):
        sched = TokenScheduler(TINYLLAMA_1_1B, W4A16_KV8)
        single = sched.build(128, "fused")
        batched = sched.build_batched([128], "fused")
        assert batched.total_cycles == pytest.approx(single.total_cycles)

    def test_step_cost_sublinear_in_batch(self):
        """The whole point: weights stream once, so 2x batch < 2x cycles."""
        sched = TokenScheduler(LLAMA2_7B, W4A16_KV8)
        one = sched.build_batched([512], "fused").total_cycles
        two = sched.build_batched([512, 512], "fused").total_cycles
        assert one < two < 2 * one

    def test_weight_bytes_charged_once(self):
        sched = TokenScheduler(LLAMA2_7B, W4A16_KV8)
        b1 = sched.build_batched([512], "fused")
        b4 = sched.build_batched([512] * 4, "fused")
        w = LLAMA2_7B.attention_params() * W4A16_KV8.effective_weight_bits / 8
        kv1 = b1.segment("layer0.attn").transfer_bytes - w
        kv4 = b4.segment("layer0.attn").transfer_bytes - w
        assert kv4 == pytest.approx(4 * kv1)

    def test_mixed_contexts(self):
        sched = TokenScheduler(LLAMA2_7B, W4A16_KV8)
        mixed = sched.build_batched([0, 256, 1023], "fused")
        assert mixed.batch == 3
        assert mixed.contexts == (0, 256, 1023)
        uniform = sched.build_batched([1023] * 3, "fused")
        assert mixed.total_cycles < uniform.total_cycles

    def test_bad_inputs_rejected(self):
        sched = TokenScheduler(LLAMA2_7B, W4A16_KV8)
        with pytest.raises(ScheduleError):
            sched.build_batched([], "fused")
        with pytest.raises(ScheduleError):
            sched.build_batched([1, -2], "fused")
        with pytest.raises(ScheduleError):
            sched.build_batched([1], "turbo")


class TestBatchedDecodeStep:
    def test_aggregate_above_single_at_batch_2(self, cm):
        single = cm.decode_step(512).tokens_per_s
        batched = cm.batched_decode_step([512, 512])
        assert batched.aggregate_tokens_per_s > single

    def test_per_sequence_rate_drops(self, cm):
        b = cm.batched_decode_step([512] * 4)
        assert b.per_sequence_tokens_per_s \
            == pytest.approx(b.aggregate_tokens_per_s / 4)
        assert b.per_sequence_tokens_per_s < cm.decode_step(512).tokens_per_s

    def test_batch_sweep_monotone_nondecreasing(self, cm):
        points = cm.batch_sweep([1, 2, 4, 8], 512)
        rates = [p.aggregate_tokens_per_s for p in points]
        for lo, hi in zip(rates, rates[1:]):
            assert hi >= lo * (1 - 1e-12)  # up to FP noise at saturation
        assert rates[1] > rates[0]

    def test_utilization_can_approach_one(self, cm):
        # Amortization drives tokens-based utilization above single-batch.
        u1 = cm.batched_decode_step([512]).utilization
        u8 = cm.batched_decode_step([512] * 8).utilization
        assert u8 > u1
