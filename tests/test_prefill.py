"""Prefill-engine comparison (the Sec. VI-B PPA trade)."""

import pytest

from repro.config import LLAMA2_7B, W4A16_KV8
from repro.core.prefill import (
    BatchEnginePrefill,
    DotEnginePrefill,
    compare_prefill_engines,
    dsp_budget_exceeded,
)
from repro.errors import SimulationError


class TestDotEnginePrefill:
    def test_ttft_linear_in_prompt(self):
        engine = DotEnginePrefill(LLAMA2_7B, W4A16_KV8)
        a = engine.report(8).ttft_s
        b = engine.report(16).ttft_s
        assert b == pytest.approx(2 * a, rel=0.05)

    def test_no_extra_area(self):
        engine = DotEnginePrefill(LLAMA2_7B, W4A16_KV8)
        assert engine.report(8).extra_dsp == 0

    def test_rejects_empty_prompt(self):
        with pytest.raises(SimulationError):
            DotEnginePrefill(LLAMA2_7B, W4A16_KV8).report(0)


class TestBatchEnginePrefill:
    def test_batching_cuts_ttft(self):
        reports = compare_prefill_engines(LLAMA2_7B, W4A16_KV8,
                                          prompt_len=32, batch=8)
        assert reports["batch"].ttft_s < reports["dot"].ttft_s / 4

    def test_decode_speed_unchanged(self):
        """The punchline: batching buys nothing in the decode phase."""
        reports = compare_prefill_engines(LLAMA2_7B, W4A16_KV8,
                                          prompt_len=32, batch=8)
        assert reports["batch"].decode_tokens_per_s == pytest.approx(
            reports["dot"].decode_tokens_per_s)

    def test_area_cost_is_real(self):
        engine = BatchEnginePrefill(LLAMA2_7B, W4A16_KV8, batch=8)
        # 7 extra MAC columns x 255 DSP each.
        assert engine.extra_dsp() == 7 * 255

    def test_large_batch_blows_dsp_budget(self):
        # The XCK26 has 1248 DSPs; the paper's VPU uses 266.  Even a
        # batch-4 matrix engine does not fit, which is the area argument.
        assert not dsp_budget_exceeded(1)
        assert dsp_budget_exceeded(8)
        assert dsp_budget_exceeded(5)

    def test_rejects_bad_batch(self):
        with pytest.raises(SimulationError):
            BatchEnginePrefill(LLAMA2_7B, W4A16_KV8, batch=0)
