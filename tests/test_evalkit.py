"""Quantization-quality metrics and harness."""

import numpy as np
import pytest

from repro.config import TINY_MODEL, QuantConfig
from repro.errors import SimulationError
from repro.evalkit.harness import (
    collect_activation_stats,
    compare_quant_configs,
    evaluate_pair,
    synthetic_corpus,
)
from repro.evalkit.metrics import (
    cross_entropy,
    kl_divergence,
    perplexity,
    topk_agreement,
)


class TestMetrics:
    def test_cross_entropy_uniform(self):
        logits = np.zeros(10)
        assert cross_entropy(logits, 3) == pytest.approx(np.log(10))

    def test_cross_entropy_confident(self):
        logits = np.full(10, -100.0)
        logits[2] = 100.0
        assert cross_entropy(logits, 2) == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_bad_target(self):
        with pytest.raises(SimulationError):
            cross_entropy(np.zeros(4), 7)

    def test_perplexity_of_uniform(self):
        nlls = [np.log(10)] * 5
        assert perplexity(nlls) == pytest.approx(10.0)

    def test_perplexity_empty_raises(self):
        with pytest.raises(SimulationError):
            perplexity([])

    def test_kl_self_is_zero(self, rng):
        logits = rng.standard_normal(32)
        assert kl_divergence(logits, logits) == pytest.approx(0.0, abs=1e-12)

    def test_kl_nonnegative(self, rng):
        for _ in range(10):
            a = rng.standard_normal(16)
            b = rng.standard_normal(16)
            assert kl_divergence(a, b) >= 0

    def test_kl_shape_mismatch(self, rng):
        with pytest.raises(SimulationError):
            kl_divergence(rng.standard_normal(4), rng.standard_normal(5))

    def test_topk_agreement_identical(self, rng):
        logits = rng.standard_normal(64)
        assert topk_agreement(logits, logits, k=5) == 1.0

    def test_topk_agreement_disjoint(self):
        a = np.arange(10.0)
        b = np.arange(10.0)[::-1].copy()
        assert topk_agreement(a, b, k=3) == 0.0

    def test_topk_rejects_bad_k(self, rng):
        with pytest.raises(SimulationError):
            topk_agreement(rng.standard_normal(4), rng.standard_normal(4), 0)


class TestCorpus:
    def test_shape(self):
        corpus = synthetic_corpus(100, n_sequences=3, length=8, seed=1)
        assert len(corpus) == 3
        assert all(len(seq) == 8 for seq in corpus)
        assert all(0 <= t < 100 for seq in corpus for t in seq)

    def test_zipf_skew(self):
        corpus = synthetic_corpus(1000, n_sequences=20, length=50, seed=2)
        flat = [t for seq in corpus for t in seq]
        # Zipf: low-rank tokens dominate.
        assert sum(1 for t in flat if t < 100) > len(flat) * 0.5

    def test_deterministic(self):
        a = synthetic_corpus(50, 2, 5, seed=3)
        b = synthetic_corpus(50, 2, 5, seed=3)
        assert a == b

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            synthetic_corpus(50, 0, 5)


class TestHarness:
    @pytest.fixture(scope="class")
    def corpus(self):
        return synthetic_corpus(TINY_MODEL.vocab_size, n_sequences=2,
                                length=6, seed=5)

    def test_evaluate_pair_basic(self, tiny_weights, corpus):
        result = evaluate_pair(tiny_weights, QuantConfig(weight_group_size=32),
                               corpus)
        assert result.ref_perplexity > 0
        assert result.quant_perplexity > 0
        assert 0 <= result.top5_agreement <= 1
        assert result.mean_kl >= 0

    def test_quant_quality_close_to_reference(self, tiny_weights, corpus):
        result = evaluate_pair(tiny_weights, QuantConfig(weight_group_size=32),
                               corpus)
        # W4A16+KV8 stays within a few percent of reference perplexity.
        assert abs(result.perplexity_delta) < 0.10
        assert result.top5_agreement > 0.6

    def test_kv4_worse_than_kv8(self, tiny_weights, corpus):
        """The Sec. IV-B claim that KV8 preserves quality better."""
        results = compare_quant_configs(
            tiny_weights,
            {"KV8": QuantConfig(weight_group_size=32, kv_bits=8),
             "KV4": QuantConfig(weight_group_size=32, kv_bits=4)},
            corpus)
        assert results["KV4"].mean_kl > results["KV8"].mean_kl

    def test_w8_better_than_w4(self, tiny_weights, corpus):
        results = compare_quant_configs(
            tiny_weights,
            {"W4": QuantConfig(weight_bits=4, weight_group_size=32),
             "W8": QuantConfig(weight_bits=8, weight_group_size=32)},
            corpus)
        assert results["W8"].mean_kl < results["W4"].mean_kl

    def test_activation_stats_collection(self, tiny_weights):
        corpus = synthetic_corpus(TINY_MODEL.vocab_size, 1, 3, seed=6)
        stats = collect_activation_stats(tiny_weights, corpus)
        assert "layer0.wq" in stats
        assert "lm_head" in stats
        assert "layer0.w_down" in stats
        assert stats["layer0.wq"].count > 0
        assert stats["layer0.w_down"].num_channels == \
            TINY_MODEL.intermediate_size

    def test_empty_corpus_rejected(self, tiny_weights):
        with pytest.raises(SimulationError):
            evaluate_pair(tiny_weights, QuantConfig(weight_group_size=32), [])
