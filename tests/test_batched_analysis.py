"""Multi-batch decode analysis (why cloud FPGAs batch and the KV260
does not — the Chen et al. framing in Sec. II)."""

import pytest

from repro.config import ALVEO_U280, KV260, LLAMA2_7B, W4A16_KV8
from repro.core.analytical import batched_decode_rate
from repro.errors import ConfigError

# A U280-class compute capability (~10 TMAC/s of FP16) vs the KV260's
# single-batch DOT engine.
U280_MACS = 1e13
KV260_DOT_MACS = 128 * 300e6  # 128 MACs/cycle at 300 MHz


def test_single_batch_matches_roofline():
    result = batched_decode_rate(LLAMA2_7B, KV260, W4A16_KV8, batch=1,
                                 context=512,
                                 compute_macs_per_s=KV260_DOT_MACS)
    assert result["per_sequence_tokens_per_s"] == pytest.approx(4.9, abs=0.4)
    assert not result["compute_bound"]


def test_kv260_cannot_batch():
    """The DOT engine computes one sequence per weight pass: batch 2 is
    already compute-bound, aggregate gain collapses."""
    one = batched_decode_rate(LLAMA2_7B, KV260, W4A16_KV8, 1, 512,
                              KV260_DOT_MACS)
    two = batched_decode_rate(LLAMA2_7B, KV260, W4A16_KV8, 2, 512,
                              KV260_DOT_MACS)
    assert two["compute_bound"]
    assert two["aggregate_tokens_per_s"] < 1.2 * one["aggregate_tokens_per_s"]


def test_u280_scales_with_batch():
    """Cloud FPGAs with real compute get near-linear aggregate speedup."""
    one = batched_decode_rate(LLAMA2_7B, ALVEO_U280, W4A16_KV8, 1, 512,
                              U280_MACS)
    eight = batched_decode_rate(LLAMA2_7B, ALVEO_U280, W4A16_KV8, 8, 512,
                                U280_MACS)
    assert eight["aggregate_tokens_per_s"] > \
        6 * one["aggregate_tokens_per_s"]


def test_batching_saturates_at_compute_roof():
    rates = [batched_decode_rate(LLAMA2_7B, ALVEO_U280, W4A16_KV8, b, 512,
                                 U280_MACS)["aggregate_tokens_per_s"]
             for b in (1, 16, 64, 256)]
    assert rates[-1] < 4 * rates[1]  # sublinear by 64+
    assert all(a <= b * 1.001 for a, b in zip(rates, rates[1:]))


def test_kv_traffic_penalizes_large_batches():
    shallow = batched_decode_rate(LLAMA2_7B, ALVEO_U280, W4A16_KV8, 64, 64,
                                  U280_MACS)
    deep = batched_decode_rate(LLAMA2_7B, ALVEO_U280, W4A16_KV8, 64, 1024,
                               U280_MACS)
    assert deep["aggregate_tokens_per_s"] <= \
        shallow["aggregate_tokens_per_s"]


def test_rejects_bad_inputs():
    with pytest.raises(ConfigError):
        batched_decode_rate(LLAMA2_7B, KV260, W4A16_KV8, 0, 10, 1e12)
    with pytest.raises(ConfigError):
        batched_decode_rate(LLAMA2_7B, KV260, W4A16_KV8, 1, 10, 0)
