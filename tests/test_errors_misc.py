"""Error hierarchy and miscellaneous coverage."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in ("ConfigError", "QuantizationError", "LayoutError",
                 "CapacityError", "ScheduleError", "SimulationError"):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_single_except_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.CapacityError("full")


def test_errors_are_not_interchangeable():
    assert not issubclass(errors.ConfigError, errors.LayoutError)


def test_package_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_public_api_importable():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_core_public_api_importable():
    import repro.core as core

    for name in core.__all__:
        assert hasattr(core, name), name


def test_cli_reachable_as_module():
    import repro.__main__  # noqa: F401  (import side effects only)
