"""Property-based tests for the paged KV allocator and prefix cache.

Hypothesis drives arbitrary allocate/advance/fork/commit/free programs
against :class:`repro.kv.PagedKVCache` and checks the invariants that
make paging safe to put under a serving engine:

* no block ever leaks: the pool's refcounts always equal the references
  held by sequence block tables plus the prefix cache, and releasing
  everything returns every block to the free list;
* copy-on-write isolation: a fork never mutates its sibling — each
  sequence's reconstructed K/V stays equal to an oracle
  :class:`QuantizedKVCache` fed the same appends;
* prefix matching only ever shares full blocks of identical content,
  and never the final prompt token.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ModelConfig
from repro.errors import CapacityError, SimulationError
from repro.kv import PagedKVCache, blocks_for_tokens, chain_hashes
from repro.model.kvcache import QuantizedKVCache

PROP_MODEL = ModelConfig(
    name="prop-test",
    hidden_size=8,
    num_layers=1,
    num_heads=2,
    intermediate_size=16,
    vocab_size=32,
    max_context=32,
)

BLOCK_SIZE = 4


def _kv_vectors(seed: int):
    rng = np.random.default_rng(seed)
    shape = (PROP_MODEL.kv_heads, PROP_MODEL.head_dim)
    return rng.normal(size=shape), rng.normal(size=shape)


# ---------------------------------------------------------------------------
# Accounting programs: allocate / advance / fork / commit / free
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"),
                  st.lists(st.integers(0, 7), min_size=1, max_size=12)),
        st.tuples(st.just("advance"), st.integers(0, 5)),
        st.tuples(st.just("fork"), st.integers(0, 5)),
        st.tuples(st.just("commit"), st.integers(0, 5)),
        st.tuples(st.just("free"), st.integers(0, 5)),
    ),
    max_size=40,
)


@settings(deadline=None, max_examples=60)
@given(ops=_ops, n_blocks=st.integers(2, 12))
def test_accounting_programs_never_leak_blocks(ops, n_blocks):
    kv = PagedKVCache(PROP_MODEL, n_blocks=n_blocks,
                      block_size=BLOCK_SIZE, store_data=False)
    live: dict[int, list[int]] = {}  # seq id -> tokens it accounts
    for op, arg in ops:
        if op == "alloc":
            seq = kv.allocate(tokens=arg)
            live[seq] = list(arg)
        elif not live:
            continue
        else:
            seq = sorted(live)[arg % len(live)]
            if op == "advance":
                try:
                    kv.advance(seq, 1)
                except (CapacityError, SimulationError):
                    pass  # pool dry or context full: both legal outcomes
                else:
                    live[seq].append(0)
            elif op == "fork":
                try:
                    new = kv.fork(seq)
                except SimulationError:
                    pass
                else:
                    live[new] = list(live[seq])
            elif op == "commit":
                tokens = live[seq]
                covered = min(len(tokens), kv.length(seq))
                if covered:
                    kv.commit_prefix(seq, tokens[:covered])
            elif op == "free":
                kv.free(seq)
                del live[seq]
        kv.audit()
        # advance() only accounts tokens the pool actually granted.
        for sid in live:
            assert kv.length(sid) <= PROP_MODEL.max_context
            assert len(kv.block_table(sid)) \
                >= blocks_for_tokens(kv.length(sid), BLOCK_SIZE)

    for seq in list(live):
        kv.free(seq)
    kv.audit()
    kv.prefix.clear()
    kv.audit()
    assert kv.n_free_blocks == kv.n_total_blocks


# ---------------------------------------------------------------------------
# Data programs: append / fork / free against a QuantizedKVCache oracle
# ---------------------------------------------------------------------------

_data_ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(0, 3)),
        st.tuples(st.just("fork"), st.integers(0, 3)),
        st.tuples(st.just("free"), st.integers(0, 3)),
    ),
    max_size=24,
)


@settings(deadline=None, max_examples=30)
@given(ops=_data_ops, seed=st.integers(0, 2**16))
def test_cow_data_matches_quantized_cache_oracle(ops, seed):
    kv = PagedKVCache(PROP_MODEL, n_blocks=24, block_size=BLOCK_SIZE,
                      store_data=True, prefix_sharing=False)
    root = kv.allocate()
    #: per sequence, the seeds of the vectors appended at each position —
    #: enough to replay its exact history into a fresh oracle cache.
    history: dict[int, list[int]] = {root: []}
    stamp = seed
    for op, arg in ops:
        if not history:
            break
        seq = sorted(history)[arg % len(history)]
        if op == "append":
            if kv.length(seq) >= PROP_MODEL.max_context:
                continue
            stamp += 1
            keys, values = _kv_vectors(stamp)
            try:
                kv.view(seq).append(0, keys, values,
                                    position=kv.length(seq))
            except CapacityError:
                continue
            history[seq].append(stamp)
        elif op == "fork":
            history[kv.fork(seq)] = list(history[seq])
        elif op == "free":
            kv.free(seq)
            del history[seq]
        kv.audit()

    for seq, stamps in history.items():
        oracle = QuantizedKVCache(PROP_MODEL)
        for pos, s in enumerate(stamps):
            keys, values = _kv_vectors(s)
            oracle.append(0, keys, values, pos)
        view = kv.view(seq)
        assert view.length == len(stamps)
        for head in range(PROP_MODEL.kv_heads):
            np.testing.assert_array_equal(
                view.keys(0, head, len(stamps)),
                oracle.keys(0, head, len(stamps)))
            np.testing.assert_array_equal(
                view.values(0, head, len(stamps)),
                oracle.values(0, head, len(stamps)))


# ---------------------------------------------------------------------------
# Prefix sharing properties
# ---------------------------------------------------------------------------

@settings(deadline=None, max_examples=60)
@given(prompt=st.lists(st.integers(0, 7), min_size=1, max_size=20),
       reuse_prompt=st.lists(st.integers(0, 7), min_size=1, max_size=20))
def test_prefix_match_is_content_correct_and_capped(prompt, reuse_prompt):
    kv = PagedKVCache(PROP_MODEL, n_blocks=16, block_size=BLOCK_SIZE,
                      store_data=False)
    first = kv.allocate(tokens=prompt)
    kv.advance(first, len(prompt) - kv.cached_length(first))
    kv.commit_prefix(first, prompt)
    kv.audit()

    second = kv.allocate(tokens=reuse_prompt)
    cached = kv.cached_length(second)
    # Sharing is full blocks only, and never the final prompt token.
    assert cached % BLOCK_SIZE == 0
    assert cached <= max(0, len(reuse_prompt) - 1)
    assert cached <= len(prompt)
    # Everything shared must be identical token content.
    assert list(reuse_prompt[:cached]) == list(prompt[:cached])
    # And the match is maximal: the next full block either diverges,
    # overruns the committed prefix, or would swallow the last token.
    next_end = cached + BLOCK_SIZE
    if next_end <= min(len(reuse_prompt) - 1, len(prompt)):
        assert list(reuse_prompt[:next_end]) != list(prompt[:next_end])
    # Shared blocks really are shared storage.
    shared_blocks = cached // BLOCK_SIZE
    assert kv.block_table(second)[:shared_blocks] \
        == kv.block_table(first)[:shared_blocks]
    kv.audit()

    kv.free(first)
    kv.free(second)
    kv.audit()


@settings(deadline=None, max_examples=40)
@given(n_prompts=st.integers(1, 6), seed=st.integers(0, 999))
def test_eviction_under_pressure_preserves_refcounts(n_prompts, seed):
    """Churning many distinct committed prompts through a tiny pool
    forces LRU eviction; nothing may leak and live tables never break."""
    rng = np.random.default_rng(seed)
    kv = PagedKVCache(PROP_MODEL, n_blocks=6, block_size=BLOCK_SIZE,
                      store_data=False)
    for _ in range(n_prompts):
        prompt = [int(t) for t in rng.integers(0, 8, size=9)]
        try:
            seq = kv.allocate(tokens=prompt)
            kv.advance(seq, len(prompt) - kv.cached_length(seq))
        except CapacityError:
            kv.audit()
            continue
        kv.commit_prefix(seq, prompt)
        kv.audit()
        kv.free(seq)
        kv.audit()
    kv.prefix.clear()
    kv.audit()
    assert kv.n_free_blocks == kv.n_total_blocks


def test_chain_hashes_depend_on_whole_history():
    a = chain_hashes([1, 2, 3, 4, 5, 6, 7, 8], 4)
    b = chain_hashes([9, 2, 3, 4, 5, 6, 7, 8], 4)
    assert len(a) == len(b) == 2
    # First blocks differ -> both hashes differ (chained, not local).
    assert a[0] != b[0] and a[1] != b[1]
    c = chain_hashes([1, 2, 3], 4)
    assert c == []  # partial blocks are never hashed


def test_fetch_plan_charges_shared_blocks_once():
    kv = PagedKVCache(PROP_MODEL, n_blocks=16, block_size=4,
                      store_data=False)
    prompt = list(range(8)) + [9]
    a = kv.allocate(tokens=prompt)
    kv.advance(a, 9)
    kv.commit_prefix(a, prompt)
    b = kv.allocate(tokens=prompt)
    kv.advance(b, 9 - kv.cached_length(b))
    assert kv.fetch_plan([a, b], [9, 9]) == [9, 1]
    # Order flips the charge: whoever reads first pays for the blocks.
    assert kv.fetch_plan([b, a], [9, 9]) == [9, 1]
