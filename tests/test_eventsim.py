"""Beat-accurate event simulation vs the analytical pipeline model."""

import pytest

from repro.config import LLAMA2_7B, TINYLLAMA_1_1B, W4A16_KV8
from repro.core.eventsim import BeatSimulator, EventQueue, StreamSegment
from repro.core.pipeline import AttentionPipeline
from repro.errors import SimulationError


class TestEventQueue:
    def test_ordering(self):
        queue = EventQueue()
        order = []
        queue.schedule(5, lambda: order.append("b"))
        queue.schedule(1, lambda: order.append("a"))
        queue.schedule(9, lambda: order.append("c"))
        end = queue.run()
        assert order == ["a", "b", "c"]
        assert end == 9

    def test_fifo_at_equal_times(self):
        queue = EventQueue()
        order = []
        queue.schedule(1, lambda: order.append(1))
        queue.schedule(1, lambda: order.append(2))
        queue.run()
        assert order == [1, 2]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1, lambda: None)

    def test_nested_scheduling(self):
        queue = EventQueue()
        seen = []

        def first():
            seen.append("first")
            queue.schedule(3, lambda: seen.append("second"))

        queue.schedule(1, first)
        end = queue.run()
        assert seen == ["first", "second"]
        assert end == 4


class TestBeatSimulator:
    @pytest.fixture(scope="class")
    def sim(self):
        return BeatSimulator(LLAMA2_7B, W4A16_KV8)

    @pytest.fixture(scope="class")
    def pipe(self):
        return AttentionPipeline(LLAMA2_7B, W4A16_KV8)

    def test_agrees_with_analytical_model(self, sim, pipe):
        """The core cross-validation: beat-level simulation lands within
        a few percent of the closed-form stage schedule."""
        for ctx in (0, 128, 512, 1023):
            beat = sim.attention_layer_cycles(ctx)["cycles"]
            analytic = pipe.fused_schedule(ctx).total_cycles
            assert beat == pytest.approx(analytic, rel=0.05), ctx

    def test_no_stalls_for_7b(self, sim):
        """The simulated interlock agrees with 'no cycle penalties'."""
        for ctx in (64, 512, 1023):
            assert sim.attention_layer_cycles(ctx)["stall_cycles"] == \
                pytest.approx(0.0, abs=1e-6), ctx

    def test_beats_match_traffic(self, sim):
        stats = sim.attention_layer_cycles(256)
        # Weight beats of one attention layer: 4 x 4096 x 4096 weights.
        weight_bytes = LLAMA2_7B.attention_params() \
            * W4A16_KV8.effective_weight_bits / 8
        kv_bytes = 2 * 256 * (LLAMA2_7B.kv_dim
                              + LLAMA2_7B.kv_heads * 4)
        expected = (weight_bytes + kv_bytes) / 64
        assert stats["beats"] == pytest.approx(expected, rel=0.01)

    def test_cycles_grow_with_context(self, sim):
        a = sim.attention_layer_cycles(64)["cycles"]
        b = sim.attention_layer_cycles(768)["cycles"]
        assert b > a

    def test_gqa_model_simulates(self):
        sim = BeatSimulator(TINYLLAMA_1_1B, W4A16_KV8)
        stats = sim.attention_layer_cycles(256)
        assert stats["cycles"] > 0

    def test_artificial_stall_detected(self, sim):
        """A segment with absurd misc work must show up as a stall."""
        segments = [StreamSegment("dense", beats=100, compute_cycles=100,
                                  misc_cycles=10_000),
                    StreamSegment("next", beats=100, compute_cycles=100)]
        stats = sim.simulate(segments)
        assert stats["stall_cycles"] > 0
        assert stats["cycles"] > 10_000
