"""The unified execution engine: requests, backends, continuous batching."""

import pytest

from repro.config import LLAMA2_7B, TINY_MODEL, W4A16_KV8, QuantConfig
from repro.core.accelerator import Accelerator
from repro.engine import (
    AnalyticalBackend,
    ContinuousBatchScheduler,
    CycleModelBackend,
    FinishReason,
    FunctionalBackend,
    Request,
    RequestState,
    RequestStatus,
    synthetic_trace,
)
from repro.errors import CapacityError, SimulationError


@pytest.fixture(scope="module")
def tiny_quant32():
    return QuantConfig(weight_group_size=32)


def make_engine(quant, max_batch=8, **kwargs):
    backend = CycleModelBackend(TINY_MODEL, quant, n_slots=max_batch)
    return ContinuousBatchScheduler(backend, max_batch=max_batch, **kwargs)


class TestRequestModel:
    def test_empty_prompt_rejected(self):
        with pytest.raises(SimulationError):
            Request(0, (), 4)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(SimulationError):
            Request(0, (1,), 0)

    def test_state_lifecycle_properties(self):
        state = RequestState(Request(7, (1, 2, 3), 4))
        assert state.status == RequestStatus.QUEUED
        assert state.prompt_len == 3
        assert not state.has_pending_forward
        with pytest.raises(SimulationError):
            _ = state.ttft_s
        with pytest.raises(SimulationError):
            _ = state.pending_token


class TestContinuousBatching:
    def test_sustains_eight_concurrent_requests(self, tiny_quant32):
        """Acceptance: >= 8 concurrent synthetic requests on TINY_MODEL."""
        engine = make_engine(tiny_quant32, max_batch=8)
        trace = synthetic_trace(TINY_MODEL, n_requests=12,
                                arrival_rate_rps=1e9, seed=1)
        report = engine.run(trace)
        assert len(report.results) == 12
        assert report.max_batch_observed >= 8
        assert report.total_new_tokens \
            == sum(r.max_new_tokens for r in trace)

    def test_all_requests_get_their_tokens(self, tiny_quant32):
        engine = make_engine(tiny_quant32, max_batch=4)
        reqs = [Request(i, (1, 2, 3), 5 + i) for i in range(6)]
        report = engine.run(reqs)
        for i, r in enumerate(report.results):
            assert r.request_id == i
            assert len(r.tokens) == 5 + i
            assert r.finish_reason == FinishReason.LENGTH
            assert len(r.decode_step_s) == len(r.tokens)

    def test_batched_run_beats_serial_time(self, tiny_quant32):
        reqs = [Request(i, (1, 2, 3, 4), 8) for i in range(8)]
        batched = make_engine(tiny_quant32, max_batch=8).run(reqs)
        serial = make_engine(tiny_quant32, max_batch=1).run(reqs)
        assert batched.total_time_s < serial.total_time_s
        assert batched.aggregate_tokens_per_s \
            > serial.aggregate_tokens_per_s
        assert serial.max_batch_observed == 1

    def test_ttft_reflects_queueing(self, tiny_quant32):
        engine = make_engine(tiny_quant32, max_batch=2)
        reqs = [Request(i, (1, 2), 4) for i in range(4)]
        report = engine.run(reqs)
        ttfts = [r.ttft_s for r in report.results]
        # Later arrivals queue behind the full batch.
        assert max(ttfts[2:]) > min(ttfts[:2])

    def test_arrivals_in_future_advance_clock(self, tiny_quant32):
        engine = make_engine(tiny_quant32, max_batch=2)
        report = engine.run([Request(0, (1, 2), 2, arrival_s=5.0)])
        assert report.total_time_s > 5.0
        assert report.results[0].ttft_s < 5.0

    def test_preemption_under_kv_pressure(self, tiny_quant32):
        engine = make_engine(tiny_quant32, max_batch=4, kv_token_budget=40)
        reqs = [Request(i, tuple(range(1, 9)), 16) for i in range(6)]
        report = engine.run(reqs)
        assert report.preemptions > 0
        assert len(report.results) == 6
        assert all(len(r.tokens) == 16 for r in report.results)
        assert any(r.preemptions > 0 for r in report.results)

    def test_lone_sequence_outgrowing_budget_retires(self, tiny_quant32):
        engine = make_engine(tiny_quant32, max_batch=1, kv_token_budget=10)
        report = engine.run([Request(0, (1, 2, 3, 4), 32)])
        result = report.results[0]
        assert result.finish_reason == FinishReason.LENGTH
        assert 0 < len(result.tokens) < 32
        # Every reported token was charged exactly one decode step.
        assert len(result.decode_step_s) == len(result.tokens)

    def test_no_admit_then_preempt_thrash(self, tiny_quant32):
        """Admission accounts for running sequences' decode growth, so a
        freshly admitted request is never evicted in the same step."""
        engine = make_engine(tiny_quant32, max_batch=4, kv_token_budget=24)
        reqs = [Request(i, (1, 2, 3, 4), 12, arrival_s=i * 1e-5)
                for i in range(6)]
        report = engine.run(reqs)
        assert len(report.results) == 6
        for event in engine.events:
            assert not (event.admitted and event.preempted)

    def test_step_events_count_budget_retirement(self, tiny_quant32):
        engine = make_engine(tiny_quant32, max_batch=1, kv_token_budget=10)
        report = engine.run([Request(0, (1, 2, 3, 4), 32)])
        assert len(report.results) == 1
        assert sum(e.retired for e in engine.events) == 1

    def test_oversized_prompt_rejected_at_submit(self, tiny_quant32):
        engine = make_engine(tiny_quant32)
        with pytest.raises(SimulationError):
            engine.submit(Request(0, tuple(range(TINY_MODEL.max_context)), 2))
        engine2 = make_engine(tiny_quant32, kv_token_budget=4)
        with pytest.raises(CapacityError):
            engine2.submit(Request(0, (1, 2, 3, 4), 2))

    def test_kv_budget_derived_from_capacity_report(self):
        backend = CycleModelBackend(LLAMA2_7B, W4A16_KV8, n_slots=8)
        engine = ContinuousBatchScheduler(backend, max_batch=8)
        # The KV260 fits ~2100 KV tokens beyond the 7B W4 weights.
        assert 1024 <= engine.kv_token_budget < 2200

    def test_report_percentiles(self, tiny_quant32):
        report = make_engine(tiny_quant32).run(
            [Request(0, (1, 2), 8)])
        p50 = report.latency_percentile_s(50)
        p99 = report.latency_percentile_s(99)
        assert 0 < p50 <= p99
        with pytest.raises(SimulationError):
            report.latency_percentile_s(101)


class TestFunctionalBackend:
    def test_matches_accelerator_decode(self, tiny_qweights):
        """Engine batch of one == the classic bare-metal decode loop."""
        acc = Accelerator.from_quantized_weights(tiny_qweights)
        want_tokens, want_perf = acc.decode([256, 1, 2], 6)
        backend = FunctionalBackend(tiny_qweights, n_slots=1)
        engine = ContinuousBatchScheduler(backend, max_batch=1)
        engine.run([Request(0, (256, 1, 2), 6)])
        state = engine.finished[0]
        assert state.generated == want_tokens
        assert state.decode_cycles == pytest.approx(want_perf.decode_cycles)
        assert state.prefill_cycles == pytest.approx(want_perf.prefill_cycles)

    def test_batching_does_not_change_tokens(self, tiny_qweights):
        acc = Accelerator.from_quantized_weights(tiny_qweights)
        prompts = [(256, 1, 2), (256, 9, 9), (256, 3, 7, 1)]
        want = [acc.decode(list(p), 5)[0] for p in prompts]
        backend = FunctionalBackend(tiny_qweights, n_slots=3)
        engine = ContinuousBatchScheduler(backend, max_batch=3)
        report = engine.run([Request(i, p, 5)
                             for i, p in enumerate(prompts)])
        assert report.max_batch_observed == 3
        for result, tokens in zip(report.results, want):
            assert list(result.tokens) == tokens

    def test_eos_retires_without_charging_a_step(self, tiny_qweights):
        acc = Accelerator.from_quantized_weights(tiny_qweights)
        first = acc.decode([256, 1, 2], 1)[0][0]
        backend = FunctionalBackend(tiny_qweights, n_slots=1)
        engine = ContinuousBatchScheduler(backend, max_batch=1)
        report = engine.run([Request(0, (256, 1, 2), 8, eos_id=first)])
        result = report.results[0]
        assert result.finish_reason == FinishReason.EOS
        assert list(result.tokens) == [first]
        assert result.decode_step_s == ()  # EOS is never forwarded

    def test_context_limit_respected(self, tiny_qweights):
        backend = FunctionalBackend(tiny_qweights, n_slots=1)
        engine = ContinuousBatchScheduler(backend, max_batch=1)
        prompt = tuple([1] * (TINY_MODEL.max_context - 2))
        report = engine.run([Request(0, prompt, 10)])
        assert len(report.results[0].tokens) <= 2


class TestAnalyticalBackend:
    def test_serves_trace(self):
        backend = AnalyticalBackend(LLAMA2_7B, W4A16_KV8, n_slots=4)
        engine = ContinuousBatchScheduler(backend, max_batch=4)
        trace = synthetic_trace(LLAMA2_7B, n_requests=6,
                                arrival_rate_rps=1.0, seed=2)
        report = engine.run(trace)
        assert len(report.results) == 6
        # A 7B on the KV260 decodes a few tokens per second, batched.
        assert 1.0 < report.aggregate_tokens_per_s < 12.0

    def test_batched_step_sublinear(self):
        backend = AnalyticalBackend(LLAMA2_7B, W4A16_KV8)
        one = backend.step_cycles([512])
        four = backend.step_cycles([512] * 4)
        assert one < four < 4 * one


class TestSyntheticTrace:
    def test_deterministic(self):
        a = synthetic_trace(TINY_MODEL, 8, seed=5)
        b = synthetic_trace(TINY_MODEL, 8, seed=5)
        assert [r.prompt for r in a] == [r.prompt for r in b]
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]

    def test_arrivals_increase(self):
        trace = synthetic_trace(TINY_MODEL, 8, arrival_rate_rps=2.0, seed=0)
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_fits_context(self):
        trace = synthetic_trace(TINY_MODEL, 32, prompt_len=(1, 200),
                                decode_len=(1, 200), seed=1)
        for r in trace:
            assert len(r.prompt) + r.max_new_tokens <= TINY_MODEL.max_context

    def test_bad_args_rejected(self):
        with pytest.raises(SimulationError):
            synthetic_trace(TINY_MODEL, 0)
        with pytest.raises(SimulationError):
            synthetic_trace(TINY_MODEL, 4, arrival_rate_rps=0)
        with pytest.raises(SimulationError):
            synthetic_trace(TINY_MODEL, 4, prompt_len=(0, 4))
