"""Top-level accelerator: functional + timing integration."""

import pytest

from repro.config import KV260, LLAMA2_7B, TINY_MODEL, W4A16_KV8
from repro.core.accelerator import Accelerator
from repro.errors import SimulationError
from repro.model.sampler import Sampler


@pytest.fixture(scope="module")
def analytical():
    return Accelerator.analytical(LLAMA2_7B, W4A16_KV8, KV260)


@pytest.fixture(scope="module")
def functional(tiny_qweights):
    return Accelerator.from_quantized_weights(tiny_qweights)


class TestAnalytical:
    def test_theoretical_rate(self, analytical):
        assert analytical.theoretical_tokens_per_s() == pytest.approx(
            5.8, abs=0.05)

    def test_decode_perf(self, analytical):
        perf = analytical.decode_perf(1023)
        assert perf.tokens_per_s == pytest.approx(4.9, abs=0.15)

    def test_decode_without_functional_raises(self, analytical):
        with pytest.raises(SimulationError):
            analytical.decode([1, 2], 4)

    def test_resources_and_power(self, analytical):
        assert analytical.resources().fits()
        assert analytical.power_w() == pytest.approx(6.57, abs=0.1)


class TestFunctional:
    def test_decode_returns_tokens_and_perf(self, functional):
        tokens, perf = functional.decode([256, 1, 2], max_new_tokens=4)
        assert len(tokens) == 4
        assert perf.new_tokens == 4
        assert len(perf.decode_cycles) == 4
        assert perf.tokens_per_s > 0

    def test_perf_has_ttft(self, functional):
        _, perf = functional.decode([256, 1, 2, 3], max_new_tokens=2)
        assert perf.ttft_s > 0
        assert perf.prompt_len == 4

    def test_utilization_known_ceiling(self, functional):
        _, perf = functional.decode([256, 1], max_new_tokens=2)
        assert 0 < perf.utilization < 1.2

    def test_sampler_integration(self, functional):
        sampler = Sampler(temperature=1.0, seed=9)
        tokens, _ = functional.decode([256, 1, 2], max_new_tokens=4,
                                      sampler=sampler)
        assert all(0 <= t < TINY_MODEL.vocab_size for t in tokens)

    def test_empty_prompt_rejected(self, functional):
        with pytest.raises(SimulationError):
            functional.decode([], 4)

    def test_stops_at_context_limit(self, functional):
        prompt = [1] * (TINY_MODEL.max_context - 2)
        tokens, _ = functional.decode(prompt, max_new_tokens=10)
        assert len(tokens) <= 2

    def test_perf_without_steps_raises(self, functional):
        from repro.core.accelerator import DecodePerf

        perf = DecodePerf(prompt_len=1, new_tokens=0, prefill_cycles=100)
        with pytest.raises(SimulationError):
            _ = perf.tokens_per_s


class TestLatencyPercentiles:
    def test_percentiles_ordered(self, functional):
        _, perf = functional.decode([256, 1, 2], max_new_tokens=6)
        p50 = perf.latency_percentile_s(50)
        p95 = perf.latency_percentile_s(95)
        assert 0 < p50 <= p95

    def test_extremes(self, functional):
        _, perf = functional.decode([256, 1], max_new_tokens=4)
        assert perf.latency_percentile_s(0) == min(perf.decode_cycles) \
            / perf.freq_hz
        assert perf.latency_percentile_s(100) == max(perf.decode_cycles) \
            / perf.freq_hz

    def test_bad_percentile_rejected(self, functional):
        _, perf = functional.decode([256, 1], max_new_tokens=2)
        with pytest.raises(SimulationError):
            perf.latency_percentile_s(120)
        with pytest.raises(SimulationError):
            perf.latency_percentile_s(-1)

    def test_single_step_every_percentile_identical(self, functional):
        _, perf = functional.decode([256, 1], max_new_tokens=1)
        assert len(perf.decode_cycles) == 1
        only = perf.decode_cycles[0] / perf.freq_hz
        for p in (0, 50, 100):
            assert perf.latency_percentile_s(p) == only

    def test_percentile_without_steps_raises(self):
        from repro.core.accelerator import DecodePerf

        perf = DecodePerf(prompt_len=1, new_tokens=0, prefill_cycles=1.0)
        with pytest.raises(SimulationError):
            perf.latency_percentile_s(50)


class TestEosStopsTiming:
    def test_eos_step_not_charged(self, functional):
        full, full_perf = functional.decode([256, 1, 2], max_new_tokens=6)
        eos = full[2]  # pretend the third generated token is EOS
        tokens, perf = functional.decode([256, 1, 2], max_new_tokens=6,
                                         eos_id=eos)
        assert tokens == full[:3]
        # Steps charged: one per forwarded token; EOS itself never runs.
        assert len(perf.decode_cycles) == 2
        assert perf.decode_cycles == pytest.approx(full_perf.decode_cycles[:2])
        assert perf.new_tokens == 3

    def test_no_eos_behaves_as_before(self, functional):
        plain, plain_perf = functional.decode([256, 1, 2], max_new_tokens=4)
        tagged, tagged_perf = functional.decode([256, 1, 2], max_new_tokens=4,
                                                eos_id=-1)
        assert tagged == plain
        assert tagged_perf.decode_cycles \
            == pytest.approx(plain_perf.decode_cycles)
