"""Unit-convention helpers."""

import pytest

from repro import units


def test_binary_capacity_constants():
    assert units.MIB == 1024 * 1024
    assert units.GIB == 1024 * units.MIB


def test_mib_of_4gib_is_4096():
    assert units.mib(4 * units.GIB) == 4096


def test_gb_per_s_is_decimal():
    assert units.gb_per_s(19.2e9) == pytest.approx(19.2)


def test_bytes_from_gb_per_s_roundtrip():
    assert units.gb_per_s(units.bytes_from_gb_per_s(12.8)) == pytest.approx(12.8)


def test_bits_to_bytes_fractional():
    assert units.bits_to_bytes(4) == 0.5


def test_seconds_from_cycles():
    assert units.seconds_from_cycles(300e6, 300e6) == pytest.approx(1.0)


def test_seconds_from_cycles_rejects_zero_freq():
    with pytest.raises(ValueError):
        units.seconds_from_cycles(100, 0)


def test_tokens_per_second():
    # 60M cycles per token at 300 MHz -> 5 token/s.
    assert units.tokens_per_second(60e6, 300e6) == pytest.approx(5.0)


def test_tokens_per_second_rejects_nonpositive_cycles():
    with pytest.raises(ValueError):
        units.tokens_per_second(0, 300e6)


def test_kv260_ddr_peak_is_exact():
    # 64-bit x 2400 MT/s = 19.2e9 B/s exactly.
    assert 64 / 8 * 2400e6 == units.bytes_from_gb_per_s(19.2)
