"""Multi-turn chat session with KV-budget truncation."""

import pytest

from repro.config import TINY_MODEL
from repro.errors import SimulationError
from repro.runtime.session import ChatSession, InferenceSession


@pytest.fixture()
def chat(tiny_qweights):
    session = InferenceSession(tiny_qweights, check_capacity=False)
    return ChatSession(session, reserve_for_reply=8)


def test_single_turn(chat):
    result = chat.say("hi", max_new_tokens=4)
    assert isinstance(result.completion, str)
    assert len(chat.turns) == 1
    assert len(chat.history_tokens) > 0


def test_history_accumulates(chat):
    chat.say("a", max_new_tokens=2)
    len_after_one = len(chat.history_tokens)
    chat.say("b", max_new_tokens=2)
    assert len(chat.history_tokens) > len_after_one


def test_history_contains_both_sides(chat):
    result = chat.say("xy", max_new_tokens=3)
    # user bytes and generated tokens are all in the history
    assert ord("x") in chat.history_tokens
    for tok in result.tokens:
        assert tok in chat.history_tokens


def test_truncation_keeps_context_bounded(chat):
    # TINY_MODEL has a 64-token context; chat long enough to overflow it.
    for i in range(12):
        chat.say("hello world", max_new_tokens=4)
    assert len(chat.history_tokens) <= TINY_MODEL.max_context


def test_truncation_drops_oldest(chat):
    chat.say("A" * 20, max_new_tokens=2)
    first_history = list(chat.history_tokens)
    for _ in range(8):
        chat.say("B" * 10, max_new_tokens=2)
    # The opening turn's tokens fell off the front.
    assert chat.history_tokens[: len(first_history)] != first_history


def test_oversized_turn_rejected(chat):
    with pytest.raises(SimulationError):
        chat.say("x" * (TINY_MODEL.max_context + 10), max_new_tokens=2)


def test_bad_reservation_rejected(tiny_qweights):
    session = InferenceSession(tiny_qweights, check_capacity=False)
    with pytest.raises(SimulationError):
        ChatSession(session, reserve_for_reply=0)


def test_turns_record_perf(chat):
    chat.say("q", max_new_tokens=2)
    assert chat.turns[0].perf.tokens_per_s > 0


class TestTruncateHistoryEdges:
    def test_budget_exactly_zero_clears_history(self, chat):
        # reserve 8 + new tokens == max_context -> budget is exactly 0.
        chat.history_tokens = list(range(40))
        chat._truncate_history(TINY_MODEL.max_context - 8)
        assert chat.history_tokens == []

    def test_budget_zero_with_empty_history(self, chat):
        chat._truncate_history(TINY_MODEL.max_context - 8)
        assert chat.history_tokens == []

    def test_single_turn_exceeding_context_raises(self, chat):
        with pytest.raises(SimulationError):
            chat._truncate_history(TINY_MODEL.max_context - 8 + 1)

    def test_budget_one_keeps_newest_token(self, chat):
        chat.history_tokens = [5, 6, 7]
        chat._truncate_history(TINY_MODEL.max_context - 8 - 1)
        assert chat.history_tokens == [7]

    def test_history_under_budget_untouched(self, chat):
        chat.history_tokens = [1, 2, 3]
        chat._truncate_history(4)
        assert chat.history_tokens == [1, 2, 3]
