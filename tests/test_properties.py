"""Cross-module property-based tests: invariants the system must keep.

These span module boundaries: traffic accounting vs the scheduler, the
cycle model vs the analytical ceiling, capacity vs the address map — the
relationships the reproduction's numbers rest on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import KV260, LLAMA2_7B, W4A16_KV8, ModelConfig, QuantConfig
from repro.core.analytical import intrinsic_utilization_ceiling
from repro.core.cyclemodel import CycleModel
from repro.core.pipeline import AttentionPipeline
from repro.memory.traffic import decode_traffic

contexts = st.integers(min_value=0, max_value=1023)


@pytest.fixture(scope="module")
def cm():
    return CycleModel(LLAMA2_7B, W4A16_KV8, KV260)


@given(contexts, contexts)
@settings(max_examples=20, deadline=None)
def test_traffic_monotone_in_context(a, b):
    lo, hi = sorted((a, b))
    t_lo = decode_traffic(LLAMA2_7B, W4A16_KV8, lo)
    t_hi = decode_traffic(LLAMA2_7B, W4A16_KV8, hi)
    assert t_hi.total_bytes >= t_lo.total_bytes
    # Weight traffic is context-independent.
    assert t_hi.weight_bytes == t_lo.weight_bytes


@given(contexts)
@settings(max_examples=15, deadline=None)
def test_traffic_affine_in_context(ctx):
    """KV traffic is exactly linear: t(c) = t(0) + c * slope."""
    t0 = decode_traffic(LLAMA2_7B, W4A16_KV8, 0)
    t1 = decode_traffic(LLAMA2_7B, W4A16_KV8, 1)
    tc = decode_traffic(LLAMA2_7B, W4A16_KV8, ctx)
    slope = t1.total_bytes - t0.total_bytes
    assert tc.total_bytes == pytest.approx(t0.total_bytes + ctx * slope)


@given(st.integers(min_value=0, max_value=900))
@settings(max_examples=8, deadline=None)
def test_cycle_model_never_beats_intrinsic_ceiling(cm, ctx):
    """Simulated utilization must sit below the metadata-only bound."""
    step = cm.decode_step(ctx)
    ceiling = intrinsic_utilization_ceiling(LLAMA2_7B, W4A16_KV8, ctx)
    assert step.utilization < ceiling


@given(st.integers(min_value=1, max_value=1000),
       st.integers(min_value=1, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_cycles_monotone_in_context(cm, a, b):
    lo, hi = sorted((a, b))
    assert cm.decode_step(hi).cycles >= cm.decode_step(lo).cycles


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=8, deadline=None)
def test_coarse_never_faster_than_fused(cm, ctx):
    assert cm.decode_step(ctx, "coarse").cycles >= \
        cm.decode_step(ctx, "fused").cycles


@given(st.integers(min_value=1, max_value=1023))
@settings(max_examples=8, deadline=None)
def test_fused_attention_dense_cycles_bound_transfer(ctx):
    """Dense duration can never be less than the pure transfer time."""
    pipe = AttentionPipeline(LLAMA2_7B, W4A16_KV8)
    report = pipe.fused_schedule(ctx)
    assert report.dense_cycles >= report.transfer_cycles * 0.999


@given(st.sampled_from([4, 8]), st.sampled_from([4, 8, 16]))
@settings(max_examples=6, deadline=None)
def test_effective_bits_ordering(wbits, kvbits):
    """More bits anywhere -> more bytes per token, fewer tokens/s."""
    base = decode_traffic(LLAMA2_7B, QuantConfig(weight_bits=4, kv_bits=4),
                          256)
    other = decode_traffic(LLAMA2_7B,
                           QuantConfig(weight_bits=wbits, kv_bits=kvbits),
                           256)
    assert other.total_bytes >= base.total_bytes


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=10, deadline=None)
def test_param_counting_consistency(layers, heads):
    """total = embedding + layers + head + norms for arbitrary shapes."""
    cfg = ModelConfig(name="prop", hidden_size=16 * heads, num_layers=layers,
                      num_heads=heads, intermediate_size=48,
                      vocab_size=300, max_context=32)
    total = cfg.total_params()
    parts = (cfg.embedding_params() + layers * cfg.layer_params()
             + cfg.lm_head_params() + cfg.norm_params())
    assert total == parts
    assert cfg.decode_stream_params() == total - cfg.embedding_params()


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_functional_decode_reproducible(seed):
    """Same seed -> same weights -> same greedy tokens, end to end."""
    from repro.config import TINY_MODEL
    from repro.model.quantized import QuantizedModel
    from repro.model.weights import quantize_model, random_weights

    quant = QuantConfig(weight_group_size=32)
    qw = quantize_model(random_weights(TINY_MODEL, seed=seed), quant)
    model = QuantizedModel(qw)
    a = model.generate([256, 1], max_new_tokens=3)
    b = model.generate([256, 1], max_new_tokens=3)
    assert a == b
    assert all(0 <= t < TINY_MODEL.vocab_size for t in a)
