"""Resource (Table I) and power models."""

import pytest

from repro.core.power import estimate_power, tokens_per_joule
from repro.core.resources import (
    KV260_BUDGET,
    PAPER_TABLE_I,
    estimate_mcu,
    estimate_resources,
    estimate_spu,
    estimate_vpu,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def report():
    return estimate_resources()


class TestTableI:
    def test_totals_close_to_paper(self, report):
        total = report.total
        paper = PAPER_TABLE_I["Total"]
        assert total.lut == pytest.approx(paper["lut"], rel=0.03)
        assert total.ff == pytest.approx(paper["ff"], rel=0.03)
        assert total.carry == pytest.approx(paper["carry"], rel=0.03)
        assert total.dsp == paper["dsp"]
        assert total.bram == pytest.approx(paper["bram"], rel=0.03)
        assert total.uram == paper["uram"]

    def test_component_breakdown_close_to_paper(self, report):
        for name in ("MemCtrl", "VPU", "SPU"):
            got = report.components[name]
            paper = PAPER_TABLE_I[name]
            assert got.lut == pytest.approx(paper["lut"], rel=0.05), name
            assert got.dsp == pytest.approx(paper["dsp"], abs=1), name

    def test_utilization_percentages(self, report):
        util = report.utilization()
        # Paper: 67% LUT, 45% FF, 26% CARRY, 24% DSP, 16% URAM, 25% BRAM.
        assert util["lut"] == pytest.approx(0.67, abs=0.02)
        assert util["ff"] == pytest.approx(0.45, abs=0.02)
        assert util["carry"] == pytest.approx(0.26, abs=0.02)
        assert util["dsp"] == pytest.approx(0.24, abs=0.02)
        assert util["uram"] == pytest.approx(0.16, abs=0.01)
        assert util["bram"] == pytest.approx(0.25, abs=0.01)

    def test_design_fits_device(self, report):
        assert report.fits()

    def test_vpu_is_biggest_lut_and_dsp_consumer(self, report):
        vpu = report.components["VPU"]
        for other in ("MemCtrl", "SPU"):
            assert vpu.lut > report.components[other].lut
            assert vpu.dsp > report.components[other].dsp

    def test_mcu_holds_most_bram(self, report):
        mcu = report.components["MemCtrl"]
        for other in ("VPU", "SPU"):
            assert mcu.bram > report.components[other].bram


class TestScaling:
    def test_vpu_dsp_scales_with_lanes(self):
        # Lanes dominate DSP count: 128 -> 64 lanes roughly halves it.
        full = estimate_vpu(128)
        half = estimate_vpu(64)
        assert half.dsp < full.dsp * 0.55

    def test_mcu_scales_with_ports(self):
        assert estimate_mcu(2).bram < estimate_mcu(4).bram

    def test_256_lane_vpu_would_not_fit_with_rest(self):
        report = estimate_resources(lanes=256)
        # 256 lanes double the VPU: LUT utilization blows past the budget
        # headroom the paper reports (70% system LUT).
        assert report.total.lut > PAPER_TABLE_I["Total"]["lut"] * 1.3

    def test_rejects_bad_lanes(self):
        with pytest.raises(ConfigError):
            estimate_vpu(lanes=96)

    def test_rejects_zero_ports(self):
        with pytest.raises(ConfigError):
            estimate_mcu(0)

    def test_spu_without_gate_is_smaller(self):
        assert estimate_spu(with_gate=False).lut < estimate_spu().lut


class TestPower:
    def test_paper_power_reproduced(self, report):
        assert estimate_power(report) == pytest.approx(6.57, abs=0.1)

    def test_power_scales_with_frequency(self, report):
        assert estimate_power(report, 150e6) < estimate_power(report, 300e6)

    def test_static_floor(self, report):
        # Even at a crawl the PS keeps burning its static power.
        assert estimate_power(report, 1e6) > 2.5

    def test_rejects_bad_frequency(self, report):
        with pytest.raises(ConfigError):
            estimate_power(report, 0)

    def test_tokens_per_joule(self):
        assert tokens_per_joule(4.9, 6.57) == pytest.approx(0.746, abs=0.01)

    def test_tokens_per_joule_rejects_zero_power(self):
        with pytest.raises(ConfigError):
            tokens_per_joule(1.0, 0.0)

    def test_budget_is_xck26(self):
        assert KV260_BUDGET.lut == 117_120
        assert KV260_BUDGET.dsp == 1_248
