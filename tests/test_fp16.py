"""FP16 datapath emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.fp16 import (
    FP16_MAX,
    fp16,
    fp16_add,
    fp16_dot,
    fp16_dot_tiled,
    fp16_matvec,
    fp16_mul,
    fp16_tree_sum,
    is_fp16_exact,
)


def test_fp16_rounds_to_half():
    # 1 + 2^-11 is the first value that cannot survive the FP16 mantissa.
    assert float(fp16(1.0 + 2**-11)) == 1.0
    assert float(fp16(1.0 + 2**-10)) == 1.0 + 2**-10


def test_is_fp16_exact():
    assert is_fp16_exact([1.0, 0.5, 2048.0])
    assert not is_fp16_exact([1.0 + 2**-11])


def test_fp16_mul_rounds_result():
    # 3.0003 rounds on input; the product rounds again on output.
    out = fp16_mul(1.0009765625, 1.0009765625)
    assert out.dtype == np.float16


def test_fp16_add_commutative():
    a, b = 1.25, -3.5
    assert fp16_add(a, b) == fp16_add(b, a)


def test_tree_sum_empty_is_zero():
    assert fp16_tree_sum([]) == np.float16(0.0)


def test_tree_sum_single():
    assert fp16_tree_sum([2.5]) == np.float16(2.5)


def test_tree_sum_odd_width():
    assert float(fp16_tree_sum([1.0, 2.0, 3.0])) == 6.0


def test_tree_sum_matches_exact_for_small_ints():
    vals = np.arange(1, 65, dtype=np.float64)
    assert float(fp16_tree_sum(vals)) == vals.sum()


def test_dot_matches_float64_within_fp16_error(rng):
    a = rng.standard_normal(128)
    b = rng.standard_normal(128)
    exact = float(np.dot(fp16(a).astype(np.float64),
                         fp16(b).astype(np.float64)))
    approx = float(fp16_dot(a, b))
    assert approx == pytest.approx(exact, abs=0.25)


def test_dot_tiled_shape_mismatch_raises():
    with pytest.raises(ValueError):
        fp16_dot_tiled(np.ones(4), np.ones(5))


def test_dot_tiled_matches_dot_for_short_vectors(rng):
    a = rng.standard_normal(100)
    b = rng.standard_normal(100)
    assert fp16_dot_tiled(a, b, lanes=128) == fp16_dot(a, b)


def test_matvec_matches_rowwise_dots(rng):
    w = rng.standard_normal((6, 256))
    x = rng.standard_normal(256)
    out = fp16_matvec(w, x, lanes=128)
    for i in range(6):
        assert out[i] == fp16_dot_tiled(w[i], x, lanes=128)


def test_matvec_rejects_bad_shapes():
    with pytest.raises(ValueError):
        fp16_matvec(np.ones((2, 3)), np.ones(4))


def test_matvec_lane_width_changes_rounding_not_magnitude(rng):
    w = rng.standard_normal((4, 128))
    x = rng.standard_normal(128)
    a = fp16_matvec(w, x, lanes=32).astype(np.float64)
    b = fp16_matvec(w, x, lanes=128).astype(np.float64)
    assert np.allclose(a, b, atol=0.05)


@given(st.lists(st.floats(min_value=-100, max_value=100,
                          allow_nan=False), min_size=1, max_size=64))
@settings(max_examples=50, deadline=None)
def test_tree_sum_close_to_exact(values):
    exact = float(np.sum(fp16(values).astype(np.float64)))
    approx = float(fp16_tree_sum(values))
    assert abs(approx - exact) <= max(4.0, abs(exact) * 0.02)


@given(st.integers(min_value=1, max_value=300))
@settings(max_examples=30, deadline=None)
def test_tree_sum_of_ones_is_count(n):
    # Integers up to 2048 are exact in FP16, so no rounding loss occurs.
    assert float(fp16_tree_sum(np.ones(n))) == n


def test_fp16_max_constant():
    assert FP16_MAX == pytest.approx(65504.0)
