"""RoPE: reference rotation and the hardware rotator."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.numerics.rope import HardwareRope, reference_rope, rotate_half_pairs


def test_rotate_half_pairs_splits():
    lo, hi = rotate_half_pairs(np.arange(8.0))
    assert np.array_equal(lo, [0, 1, 2, 3])
    assert np.array_equal(hi, [4, 5, 6, 7])


def test_rotate_half_rejects_odd():
    with pytest.raises(ConfigError):
        rotate_half_pairs(np.arange(7.0))


def test_reference_rope_position_zero_is_identity(rng):
    x = rng.standard_normal(64)
    assert np.allclose(reference_rope(x, 0), x)


def test_reference_rope_preserves_norm(rng):
    # Rotations are orthogonal: the vector norm is invariant.
    x = rng.standard_normal(128)
    for pos in (1, 17, 512):
        assert np.linalg.norm(reference_rope(x, pos)) == pytest.approx(
            np.linalg.norm(x))


def test_reference_rope_relative_property(rng):
    # <RoPE(q, m), RoPE(k, n)> depends only on m - n.
    q = rng.standard_normal(64)
    k = rng.standard_normal(64)
    dot_a = reference_rope(q, 10) @ reference_rope(k, 7)
    dot_b = reference_rope(q, 23) @ reference_rope(k, 20)
    assert dot_a == pytest.approx(dot_b, rel=1e-9)


def test_reference_rope_batched(rng):
    x = rng.standard_normal((4, 64))
    batched = reference_rope(x, 5)
    for i in range(4):
        assert np.allclose(batched[i], reference_rope(x[i], 5))


class TestHardwareRope:
    def test_matches_reference_within_lut_error(self, rng):
        hw = HardwareRope(head_dim=128)
        x = rng.standard_normal(128)
        for pos in (0, 1, 63, 511, 1023):
            ref = reference_rope(x, pos)
            got = hw.apply(x, pos).astype(np.float64)
            assert np.max(np.abs(got - ref)) < 0.02

    def test_rejects_wrong_head_dim(self):
        hw = HardwareRope(head_dim=64)
        with pytest.raises(ConfigError):
            hw.apply(np.ones(128), 0)

    def test_position_zero_close_to_identity(self, rng):
        hw = HardwareRope(head_dim=64)
        x = rng.standard_normal(64)
        out = hw.apply(x, 0).astype(np.float64)
        assert np.max(np.abs(out - np.float16(x).astype(np.float64))) < 5e-3

    def test_max_error_reporting(self):
        hw = HardwareRope(head_dim=64)
        err = hw.max_error(position=700, trials=8)
        assert 0 <= err < 0.05

    def test_smaller_rom_is_coarser(self):
        fine = HardwareRope(head_dim=64, rom_depth=4096)
        coarse = HardwareRope(head_dim=64, rom_depth=64)
        # A much shallower ROM must show a larger worst-case error.
        assert coarse.max_error(901, trials=16) > fine.max_error(901, trials=16)

    def test_batched_heads(self, rng):
        hw = HardwareRope(head_dim=32)
        x = rng.standard_normal((3, 32))
        out = hw.apply(x, 9)
        assert out.shape == (3, 32)
        for i in range(3):
            assert np.array_equal(out[i], hw.apply(x[i], 9))
