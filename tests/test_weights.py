"""Weight containers, synthetic init, and whole-model quantization."""

import numpy as np
import pytest

from repro.config import SMALL_MODEL, TINY_MODEL, QuantConfig
from repro.errors import ConfigError
from repro.model.weights import (
    QuantizedModelWeights,
    quantize_model,
    random_weights,
)
from repro.quant.calibration import ActivationStats


class TestRandomWeights:
    def test_param_count_matches_config(self):
        w = random_weights(TINY_MODEL, seed=0)
        assert w.param_count() == TINY_MODEL.total_params()

    def test_param_count_small_model(self):
        w = random_weights(SMALL_MODEL, seed=0)
        assert w.param_count() == SMALL_MODEL.total_params()

    def test_deterministic_by_seed(self):
        a = random_weights(TINY_MODEL, seed=5)
        b = random_weights(TINY_MODEL, seed=5)
        assert np.array_equal(a.layers[0].wq, b.layers[0].wq)

    def test_different_seeds_differ(self):
        a = random_weights(TINY_MODEL, seed=5)
        b = random_weights(TINY_MODEL, seed=6)
        assert not np.array_equal(a.layers[0].wq, b.layers[0].wq)

    def test_projection_scaling(self):
        # std ~ 1/sqrt(in_features) keeps activations near unit variance.
        w = random_weights(SMALL_MODEL, seed=1)
        std = w.layers[0].wq.std()
        assert std == pytest.approx(1 / np.sqrt(SMALL_MODEL.hidden_size),
                                    rel=0.15)

    def test_norm_weights_near_one(self):
        w = random_weights(TINY_MODEL, seed=2)
        assert w.layers[0].input_norm.mean() == pytest.approx(1.0, abs=0.05)

    def test_gate_present_for_gated_mlp(self):
        w = random_weights(TINY_MODEL, seed=0)
        assert w.layers[0].w_gate is not None

    def test_head_matrix_untied(self):
        w = random_weights(TINY_MODEL, seed=0)
        assert w.head_matrix() is w.lm_head

    def test_projections_dict(self):
        projs = random_weights(TINY_MODEL, seed=0).layers[0].projections()
        assert set(projs) == {"wq", "wk", "wv", "wo", "w_gate", "w_up",
                              "w_down"}


class TestQuantizeModel:
    def test_produces_all_layers(self, tiny_weights, tiny_quant):
        qw = quantize_model(tiny_weights, tiny_quant)
        assert isinstance(qw, QuantizedModelWeights)
        assert len(qw.layers) == TINY_MODEL.num_layers
        assert len(qw.norms) == TINY_MODEL.num_layers

    def test_embedding_stays_fp16(self, tiny_qweights):
        assert tiny_qweights.embedding.dtype == np.float16

    def test_projection_lookup(self, tiny_qweights):
        res = tiny_qweights.projection(0, "wq")
        assert res.params.codes.shape == (TINY_MODEL.hidden_size,
                                          TINY_MODEL.hidden_size)

    def test_projection_missing_raises(self, tiny_qweights):
        with pytest.raises(ConfigError):
            tiny_qweights.projection(0, "nonexistent")

    def test_stored_bytes_close_to_analytic(self, tiny_qweights):
        got = tiny_qweights.stored_weight_bytes()
        q = tiny_qweights.quant
        streamed = TINY_MODEL.decode_stream_params() - TINY_MODEL.norm_params()
        expected = streamed * q.effective_weight_bits / 8 \
            + (TINY_MODEL.embedding_params() + TINY_MODEL.norm_params()) * 2
        assert got == pytest.approx(expected, rel=0.01)

    def test_quantization_error_is_small(self, tiny_weights, tiny_qweights):
        w = tiny_weights.layers[0].wq
        w_hat = tiny_qweights.projection(0, "wq").effective_weight(np.float64)
        rel = np.abs(w - w_hat).max() / np.abs(w).max()
        assert rel < 0.1

    def test_awq_stats_are_used(self, tiny_weights, tiny_quant):
        stats = {}
        key = "layer0.wq"
        s = ActivationStats(TINY_MODEL.hidden_size)
        acts = np.ones((4, TINY_MODEL.hidden_size))
        acts[:, 0] = 100.0
        s.update(acts)
        stats[key] = s
        qw = quantize_model(tiny_weights, tiny_quant, act_stats=stats)
        assert qw.projection(0, "wq").alpha >= 0.0
        # Other layers fall back to plain RTN (alpha 0, unit scales).
        assert np.allclose(qw.projection(1, "wq").channel_scales, 1.0)

    def test_mismatched_stats_raise(self, tiny_weights, tiny_quant):
        stats = {"layer0.wq": ActivationStats(7)}
        with pytest.raises(ConfigError):
            quantize_model(tiny_weights, tiny_quant, act_stats=stats)
