"""AWQ activation-aware quantization."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant.awq import (
    awq_quantize_matrix,
    search_awq_scales,
)
from repro.quant.groupquant import quantize_groups, dequantize_groups


def _outlier_setup(rng, out=16, inp=128):
    """Weights + activation stats with a strong outlier channel."""
    w = rng.standard_normal((out, inp)) * 0.05
    act = np.ones(inp)
    act[7] = 50.0  # one channel sees huge activations
    return w, act


def test_search_returns_valid_result(rng):
    w, act = _outlier_setup(rng)
    res = search_awq_scales(w, act, bits=4, group_size=32)
    assert 0.0 <= res.alpha <= 1.0
    assert res.channel_scales.shape == (128,)
    assert res.params.codes.shape == w.shape


def test_awq_beats_plain_rtn_on_outliers(rng):
    """The whole point of AWQ: activation-weighted output error drops."""
    w, act = _outlier_setup(rng)
    res = search_awq_scales(w, act, bits=4, group_size=32)

    plain = quantize_groups(w, 4, 32)
    w_plain = dequantize_groups(plain, np.float64)
    dw_plain = (w - w_plain) * act[None, :]
    plain_err = float(np.mean(dw_plain**2))

    assert res.search_error <= plain_err
    # With a 50x outlier the improvement should be substantial.
    assert res.search_error < plain_err * 0.9


def test_alpha_zero_is_plain_quantization(rng):
    w, act = _outlier_setup(rng)
    res = search_awq_scales(w, act, bits=4, group_size=32,
                            alpha_grid=(0.0,))
    assert np.allclose(res.channel_scales, 1.0)


def test_effective_weight_close_to_original(rng):
    w, act = _outlier_setup(rng)
    res = search_awq_scales(w, act, bits=4, group_size=32)
    w_eff = res.effective_weight(np.float64)
    assert np.max(np.abs(w - w_eff)) < 0.05


def test_no_stats_falls_back_to_rtn(rng):
    w = rng.standard_normal((8, 64))
    res = awq_quantize_matrix(w, None, bits=4, group_size=32)
    assert res.alpha == 0.0
    assert np.allclose(res.channel_scales, 1.0)


def test_channel_scales_normalized(rng):
    w, act = _outlier_setup(rng)
    res = search_awq_scales(w, act, bits=4, group_size=32)
    # Unit geometric mean keeps the weight magnitude comparable.
    assert np.exp(np.mean(np.log(res.channel_scales))) == pytest.approx(1.0)


def test_rejects_mismatched_stats(rng):
    with pytest.raises(QuantizationError):
        search_awq_scales(rng.standard_normal((4, 64)), np.ones(32),
                          bits=4, group_size=32)


def test_rejects_nonpositive_activations(rng):
    with pytest.raises(QuantizationError):
        search_awq_scales(rng.standard_normal((4, 64)),
                          np.zeros(64), bits=4, group_size=32)


def test_higher_alpha_protects_outlier_channel(rng):
    w, act = _outlier_setup(rng)
    lo = search_awq_scales(w, act, bits=4, group_size=32, alpha_grid=(0.0,))
    hi = search_awq_scales(w, act, bits=4, group_size=32, alpha_grid=(0.8,))
    col = 7
    err_lo = np.abs(lo.effective_weight(np.float64)[:, col] - w[:, col]).max()
    err_hi = np.abs(hi.effective_weight(np.float64)[:, col] - w[:, col]).max()
    assert err_hi <= err_lo
